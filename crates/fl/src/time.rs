//! The normalized time model of the paper's evaluation.
//!
//! The paper simulates the FL system with a *normalized* notion of time
//! (Section V): the local computation of one round — performed by all clients
//! in parallel — costs a fixed 1 unit, and the "communication time" `β` is
//! defined as the time required to send the entire `D`-dimensional gradient
//! vector both uplink and downlink between the clients and the server. When
//! fewer elements are sent, the communication time scales proportionally to
//! the number of scalars actually transmitted, assuming equal uplink and
//! downlink speeds. Sparse messages carry an index alongside every value, so
//! `k` sparse elements cost `2k` scalars — this is the factor behind the
//! paper's FedAvg period of `⌊D/(2k)⌋`.
//!
//! The `2k`-scalar convention is a *proxy*: no bytes exist and every client
//! shares one link. For byte-accurate pricing of the frames the wire codecs
//! actually emit — per-client heterogeneous bandwidths, latency, bandwidth
//! traces — use [`ChannelModel`](crate::ChannelModel) via
//! [`SimulationConfig::wire`](crate::SimulationConfig::wire); the two cost
//! models are interchangeable signals for the online controllers.

use serde::{Deserialize, Serialize};

/// Normalized computation/communication time accounting for one FL system.
///
/// # Examples
///
/// ```
/// use agsfl_fl::TimeModel;
///
/// // Computation 1 per round; sending the full gradient (up + down) costs 10.
/// let tm = TimeModel::new(1.0, 10.0);
/// // A dense exchange of D scalars each way costs the full comm time.
/// assert_eq!(tm.round_time(1000, 1000, 1000), 11.0);
/// // A sparse exchange of k = 100 elements costs 2*100 scalars each way.
/// let sparse = tm.round_time(1000, 200, 200);
/// assert!((sparse - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    compute_time: f64,
    full_comm_time: f64,
}

impl TimeModel {
    /// Creates a time model with the given per-round computation time and the
    /// communication time of a full `D`-element (up + down) exchange.
    ///
    /// # Panics
    ///
    /// Panics if either time is negative or not finite.
    pub fn new(compute_time: f64, full_comm_time: f64) -> Self {
        assert!(
            compute_time.is_finite() && compute_time >= 0.0,
            "compute_time must be finite and non-negative"
        );
        assert!(
            full_comm_time.is_finite() && full_comm_time >= 0.0,
            "full_comm_time must be finite and non-negative"
        );
        Self {
            compute_time,
            full_comm_time,
        }
    }

    /// The paper's default: computation 1 per round, communication `beta` for
    /// a full-gradient exchange.
    pub fn normalized(beta: f64) -> Self {
        Self::new(1.0, beta)
    }

    /// Per-round computation time.
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// Communication time of a full `D`-element exchange (uplink + downlink).
    pub fn full_comm_time(&self) -> f64 {
        self.full_comm_time
    }

    /// Communication time of exchanging `uplink_scalars` + `downlink_scalars`
    /// scalars for a model of dimension `dim`: the full communication time
    /// covers `2 * dim` scalars (D up, D down), and partial exchanges scale
    /// proportionally.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn comm_time(&self, dim: usize, uplink_scalars: usize, downlink_scalars: usize) -> f64 {
        assert!(dim > 0, "model dimension must be positive");
        let fraction = (uplink_scalars + downlink_scalars) as f64 / (2.0 * dim as f64);
        self.full_comm_time * fraction
    }

    /// Total time of one round: computation plus communication.
    pub fn round_time(&self, dim: usize, uplink_scalars: usize, downlink_scalars: usize) -> f64 {
        self.compute_time + self.comm_time(dim, uplink_scalars, downlink_scalars)
    }

    /// Time of one round of `k`-element bidirectional sparsified GS (both
    /// directions carry `k` values plus `k` indices).
    pub fn sparse_round_time(&self, dim: usize, k: usize) -> f64 {
        self.round_time(dim, 2 * k, 2 * k)
    }

    /// Time of one round with a full dense exchange (FedAvg aggregation round
    /// or always-send-all).
    pub fn dense_round_time(&self, dim: usize) -> f64 {
        self.round_time(dim, dim, dim)
    }

    /// Time of a computation-only round (FedAvg round without aggregation).
    pub fn local_round_time(&self) -> f64 {
        self.compute_time
    }

    /// The FedAvg aggregation period `⌊D / (2k)⌋` that equalizes the average
    /// communication overhead with `k`-element GS (the division by 2 accounts
    /// for index transmission in GS). Returns at least 1.
    pub fn fedavg_period(dim: usize, k: usize) -> usize {
        if k == 0 {
            return usize::MAX;
        }
        (dim / (2 * k)).max(1)
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::normalized(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dense_round_is_compute_plus_full_comm() {
        let tm = TimeModel::new(1.0, 10.0);
        assert_eq!(tm.dense_round_time(500), 11.0);
        assert_eq!(tm.local_round_time(), 1.0);
    }

    #[test]
    fn sparse_round_scales_with_k() {
        let tm = TimeModel::normalized(10.0);
        let d = 1000usize;
        // k = D/2 means 2k = D scalars per direction: same as dense.
        assert!((tm.sparse_round_time(d, 500) - tm.dense_round_time(d)).abs() < 1e-9);
        // k = D/4 costs half the communication.
        assert!((tm.sparse_round_time(d, 250) - (1.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn fedavg_period_equalizes_average_overhead() {
        let d = 10_000usize;
        let k = 100usize;
        let period = TimeModel::fedavg_period(d, k);
        assert_eq!(period, 50);
        let tm = TimeModel::normalized(20.0);
        // Average FedAvg comm per round = full comm / period.
        let fedavg_avg = tm.comm_time(d, d, d) / period as f64;
        let gs_per_round = tm.comm_time(d, 2 * k, 2 * k);
        assert!((fedavg_avg - gs_per_round).abs() < 1e-9);
    }

    #[test]
    fn fedavg_period_edge_cases() {
        assert_eq!(TimeModel::fedavg_period(100, 0), usize::MAX);
        assert_eq!(TimeModel::fedavg_period(10, 50), 1);
    }

    #[test]
    fn zero_comm_time_is_allowed() {
        let tm = TimeModel::new(1.0, 0.0);
        assert_eq!(tm.sparse_round_time(100, 10), 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = TimeModel::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let tm = TimeModel::default();
        let _ = tm.comm_time(0, 1, 1);
    }

    proptest! {
        #[test]
        fn prop_round_time_monotone_in_scalars(
            dim in 1usize..10_000,
            up in 0usize..5_000,
            down in 0usize..5_000,
            beta in 0.0f64..100.0,
        ) {
            let tm = TimeModel::normalized(beta);
            let t1 = tm.round_time(dim, up, down);
            let t2 = tm.round_time(dim, up + 1, down + 1);
            prop_assert!(t2 >= t1);
            prop_assert!(t1 >= tm.compute_time());
        }

        #[test]
        fn prop_comm_time_linear(
            dim in 1usize..10_000,
            k in 0usize..2_000,
            beta in 0.0f64..50.0,
        ) {
            let tm = TimeModel::normalized(beta);
            let single = tm.comm_time(dim, k, k);
            let double = tm.comm_time(dim, 2 * k, 2 * k);
            prop_assert!((double - 2.0 * single).abs() < 1e-9);
        }
    }
}
