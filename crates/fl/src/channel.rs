//! Byte-accurate heterogeneous channel model.
//!
//! [`TimeModel`](crate::TimeModel) prices a round in the paper's abstract
//! "scalars transmitted" currency, with every client on the same link.
//! [`ChannelModel`] prices the *frames* the wire codecs actually emit
//! (`agsfl_wire`): each client owns an uplink/downlink bandwidth and a
//! latency, bandwidths may fluctuate round by round through a trace, and a
//! round costs what the paper's synchronized protocol implies —
//! computation, then the **slowest** selected client's upload (uplinks run
//! in parallel, the server waits for all of them), then the broadcast
//! downlink (complete when the slowest receiver has it).
//!
//! The online formulation only needs an additive per-round cost (the paper
//! notes the objective extends to any such resource, Sections I and VI), so
//! swapping this byte-priced time for the scalar proxy is a drop-in signal
//! change behind [`SimulationConfig::wire`](crate::SimulationConfig::wire)
//! — the controllers in `agsfl-online` adapt `k` against whichever signal
//! the round reports.

use serde::{Deserialize, Serialize};

/// One client's link: uplink/downlink capacity in **bytes per normalized
/// time unit** plus a fixed per-message latency (in normalized time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientLink {
    /// Uplink capacity in bytes per normalized time unit.
    pub uplink_bytes_per_unit: f64,
    /// Downlink capacity in bytes per normalized time unit.
    pub downlink_bytes_per_unit: f64,
    /// Fixed per-message latency in normalized time units.
    pub latency: f64,
}

impl ClientLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is not strictly positive or the latency is
    /// negative/not finite.
    pub fn new(uplink_bytes_per_unit: f64, downlink_bytes_per_unit: f64, latency: f64) -> Self {
        assert!(
            uplink_bytes_per_unit.is_finite() && uplink_bytes_per_unit > 0.0,
            "uplink bandwidth must be positive"
        );
        assert!(
            downlink_bytes_per_unit.is_finite() && downlink_bytes_per_unit > 0.0,
            "downlink bandwidth must be positive"
        );
        assert!(
            latency.is_finite() && latency >= 0.0,
            "latency must be finite and non-negative"
        );
        Self {
            uplink_bytes_per_unit,
            downlink_bytes_per_unit,
            latency,
        }
    }
}

/// Per-client channel conditions, optionally fluctuating per round.
///
/// # Examples
///
/// ```
/// use agsfl_fl::ChannelModel;
///
/// // 4 clients, 1000 B per time unit each way, latency 0.1, compute 1.
/// let channel = ChannelModel::uniform(4, 1.0, 1_000.0, 1_000.0, 0.1);
/// // 500 B up per client, 800 B broadcast down:
/// // 1 (compute) + 0.1 + 0.5 (slowest upload) + 0.1 + 0.8 (broadcast).
/// let t = channel.round_time(0, &[500, 500, 500, 500], 800);
/// assert!((t - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Per-round computation time (all clients in parallel), matching the
    /// normalized convention of [`TimeModel`](crate::TimeModel).
    compute_time: f64,
    /// One link per client.
    links: Vec<ClientLink>,
    /// Optional bandwidth trace: `trace[m % trace.len()][i]` multiplies
    /// client `i`'s bandwidths (both directions) in round `m` (0-based).
    /// Empty means static conditions.
    trace: Vec<Vec<f64>>,
}

impl ChannelModel {
    /// Creates a channel model with per-client links and no trace.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty or `compute_time` is negative/not finite.
    pub fn new(compute_time: f64, links: Vec<ClientLink>) -> Self {
        assert!(!links.is_empty(), "channel model needs at least one client");
        assert!(
            compute_time.is_finite() && compute_time >= 0.0,
            "compute_time must be finite and non-negative"
        );
        Self {
            compute_time,
            links,
            trace: Vec::new(),
        }
    }

    /// Every client on the same link.
    pub fn uniform(
        num_clients: usize,
        compute_time: f64,
        uplink_bytes_per_unit: f64,
        downlink_bytes_per_unit: f64,
        latency: f64,
    ) -> Self {
        Self::new(
            compute_time,
            vec![
                ClientLink::new(uplink_bytes_per_unit, downlink_bytes_per_unit, latency);
                num_clients
            ],
        )
    }

    /// Attaches a per-round bandwidth trace. Round `m` uses row
    /// `m % trace.len()`; each row holds one multiplier per client.
    ///
    /// # Panics
    ///
    /// Panics if a row's length differs from the client count or a
    /// multiplier is not strictly positive.
    pub fn with_trace(mut self, trace: Vec<Vec<f64>>) -> Self {
        for row in &trace {
            assert_eq!(
                row.len(),
                self.links.len(),
                "trace row length must match client count"
            );
            assert!(
                row.iter().all(|&m| m.is_finite() && m > 0.0),
                "bandwidth multipliers must be positive"
            );
        }
        self.trace = trace;
        self
    }

    /// Number of clients this channel models.
    pub fn num_clients(&self) -> usize {
        self.links.len()
    }

    /// Per-round computation time.
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// The configured links.
    pub fn links(&self) -> &[ClientLink] {
        &self.links
    }

    /// The bandwidth multiplier of client `i` in round `round` (0-based).
    pub fn multiplier(&self, round: usize, client: usize) -> f64 {
        if self.trace.is_empty() {
            1.0
        } else {
            self.trace[round % self.trace.len()][client]
        }
    }

    /// Time for client `i` to upload `bytes` in round `round`.
    pub fn uplink_time(&self, round: usize, client: usize, bytes: usize) -> f64 {
        self.uplink_time_scaled(round, client, bytes, 1.0)
    }

    /// [`ChannelModel::uplink_time`] with a transmission slowdown factor:
    /// the latency is unchanged but the transfer term is multiplied by
    /// `slowdown` (stragglers under fault injection). A factor of exactly
    /// `1.0` is bit-identical to the unscaled time.
    pub fn uplink_time_scaled(
        &self,
        round: usize,
        client: usize,
        bytes: usize,
        slowdown: f64,
    ) -> f64 {
        let link = &self.links[client];
        link.latency
            + (bytes as f64 / (link.uplink_bytes_per_unit * self.multiplier(round, client)))
                * slowdown
    }

    /// Time for client `i` to receive a `bytes`-long broadcast in round
    /// `round`.
    pub fn downlink_time(&self, round: usize, client: usize, bytes: usize) -> f64 {
        let link = &self.links[client];
        link.latency
            + bytes as f64 / (link.downlink_bytes_per_unit * self.multiplier(round, client))
    }

    /// Total time of one synchronized round (0-based `round`): computation,
    /// plus the slowest upload across all clients, plus the broadcast
    /// downlink (the slowest receiver; every client needs the update).
    /// `uplink_bytes` holds one frame length per client. The protocol is
    /// synchronized, so every client pays its uplink latency even for a
    /// zero-byte message (it still has to check in before the server can
    /// aggregate).
    ///
    /// # Panics
    ///
    /// Panics if `uplink_bytes.len()` differs from the client count.
    pub fn round_time(&self, round: usize, uplink_bytes: &[usize], downlink_bytes: usize) -> f64 {
        self.compute_time
            + self.uplink_phase_time(round, uplink_bytes)
            + self.downlink_phase_time(round, downlink_bytes)
    }

    /// The uplink phase of a synchronized round: the slowest client's upload
    /// time, with one frame length per client.
    ///
    /// # Panics
    ///
    /// Panics if `uplink_bytes.len()` differs from the client count.
    pub fn uplink_phase_time(&self, round: usize, uplink_bytes: &[usize]) -> f64 {
        assert_eq!(
            uplink_bytes.len(),
            self.links.len(),
            "one uplink byte count per client"
        );
        uplink_bytes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| self.uplink_time(round, i, bytes))
            .fold(0.0f64, f64::max)
    }

    /// [`ChannelModel::uplink_phase_time`] restricted to a cohort: the
    /// slowest upload among `members` (client ids), with `uplink_bytes[i]`
    /// the frame length of `members[i]`. With `members == 0..num_clients`
    /// this is bit-identical to the full-population phase time.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn uplink_phase_time_for(
        &self,
        round: usize,
        members: &[usize],
        uplink_bytes: &[usize],
    ) -> f64 {
        assert_eq!(
            members.len(),
            uplink_bytes.len(),
            "one uplink byte count per cohort member"
        );
        members
            .iter()
            .zip(uplink_bytes.iter())
            .map(|(&client, &bytes)| self.uplink_time(round, client, bytes))
            .fold(0.0f64, f64::max)
    }

    /// The broadcast phase of a synchronized round: the slowest receiver's
    /// downlink time for a `downlink_bytes`-long frame.
    pub fn downlink_phase_time(&self, round: usize, downlink_bytes: usize) -> f64 {
        (0..self.links.len())
            .map(|i| self.downlink_time(round, i, downlink_bytes))
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_round_time_decomposes() {
        let channel = ChannelModel::uniform(3, 1.0, 100.0, 200.0, 0.0);
        // Slowest upload 50/100 = 0.5; broadcast 100/200 = 0.5.
        let t = channel.round_time(0, &[10, 50, 20], 100);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_charged_per_phase() {
        let channel = ChannelModel::uniform(2, 0.0, 1000.0, 1000.0, 0.25);
        // Zero bytes still pay two latencies (uplink + downlink phases).
        let t = channel.round_time(0, &[0, 0], 0);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_slowest_client_dominates() {
        let links = vec![
            ClientLink::new(1_000.0, 1_000.0, 0.0),
            ClientLink::new(10.0, 1_000.0, 0.0), // straggler uplink
        ];
        let channel = ChannelModel::new(1.0, links);
        let t = channel.round_time(0, &[100, 100], 0);
        // Straggler: 100 / 10 = 10 time units.
        assert!((t - 11.0).abs() < 1e-12);
    }

    #[test]
    fn trace_cycles_and_scales_bandwidth() {
        let channel =
            ChannelModel::uniform(1, 0.0, 100.0, 100.0, 0.0).with_trace(vec![vec![1.0], vec![0.5]]);
        assert_eq!(channel.multiplier(0, 0), 1.0);
        assert_eq!(channel.multiplier(1, 0), 0.5);
        assert_eq!(channel.multiplier(2, 0), 1.0, "trace cycles");
        let fast = channel.round_time(0, &[100], 0);
        let slow = channel.round_time(1, &[100], 0);
        assert!((fast - 1.0).abs() < 1e-12);
        assert!((slow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_uplink_time_slows_only_the_transfer_term() {
        let channel = ChannelModel::uniform(1, 0.0, 100.0, 100.0, 0.25);
        let nominal = channel.uplink_time(0, 0, 50);
        let slowed = channel.uplink_time_scaled(0, 0, 50, 4.0);
        assert_eq!(
            nominal.to_bits(),
            channel.uplink_time_scaled(0, 0, 50, 1.0).to_bits()
        );
        // latency 0.25 + 0.5 * 4 = 2.25, not 4 * (0.25 + 0.5).
        assert!((slowed - 2.25).abs() < 1e-12);
    }

    #[test]
    fn phase_times_decompose_round_time() {
        let channel = ChannelModel::uniform(3, 1.0, 100.0, 200.0, 0.1);
        let up = channel.uplink_phase_time(2, &[10, 50, 20]);
        let down = channel.downlink_phase_time(2, 100);
        assert_eq!(
            channel.round_time(2, &[10, 50, 20], 100).to_bits(),
            (1.0 + up + down).to_bits()
        );
    }

    #[test]
    fn cohort_phase_time_matches_full_population() {
        let channel = ChannelModel::uniform(4, 1.0, 100.0, 200.0, 0.1);
        let bytes = [10usize, 50, 20, 5];
        let full = channel.uplink_phase_time(3, &bytes);
        let via_members = channel.uplink_phase_time_for(3, &[0, 1, 2, 3], &bytes);
        assert_eq!(full.to_bits(), via_members.to_bits());
        // A strict cohort only folds over its members.
        let sub = channel.uplink_phase_time_for(3, &[0, 3], &[10, 5]);
        let expected = channel
            .uplink_time(3, 0, 10)
            .max(channel.uplink_time(3, 3, 5));
        assert_eq!(sub.to_bits(), expected.to_bits());
    }

    #[test]
    #[should_panic]
    fn cohort_phase_time_length_mismatch_panics() {
        let channel = ChannelModel::uniform(2, 1.0, 1.0, 1.0, 0.0);
        let _ = channel.uplink_phase_time_for(0, &[0, 1], &[10]);
    }

    #[test]
    #[should_panic]
    fn empty_links_panic() {
        let _ = ChannelModel::new(1.0, vec![]);
    }

    #[test]
    #[should_panic]
    fn trace_row_length_mismatch_panics() {
        let _ = ChannelModel::uniform(2, 1.0, 1.0, 1.0, 0.0).with_trace(vec![vec![1.0]]);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        let _ = ClientLink::new(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn uplink_count_mismatch_panics() {
        let channel = ChannelModel::uniform(2, 1.0, 1.0, 1.0, 0.0);
        let _ = channel.round_time(0, &[1], 1);
    }
}
