//! Per-round reports produced by the simulator.

use agsfl_wire::CodecId;
use serde::{Deserialize, Serialize};

use crate::fault::FaultRoundReport;

/// The extra measurements needed by the derivative-sign estimator of
/// Section IV-E, produced when a round is run with a probe sparsity `k'`.
///
/// All three losses are averages (over clients) of single-sample losses
/// `f_{i,h}(·)` evaluated on the same per-client sample `h`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeReport {
    /// The probe sparsity `k' = k_m − δ_m/2` that was evaluated.
    pub probe_k: usize,
    /// `L̃(w(m-1))`: average probe-sample loss at the round's starting weights.
    pub loss_prev: f64,
    /// `L̃(w(m))`: average probe-sample loss after the `k_m`-element update.
    pub loss_now: f64,
    /// `L̃(w'(m))`: average probe-sample loss after the hypothetical
    /// `k'`-element update.
    pub loss_probe: f64,
    /// `θ_m(k')`: the time one round would have taken with `k'`-element GS.
    pub probe_round_time: f64,
}

/// Byte-level accounting of one round run with a wire configuration
/// ([`SimulationConfig::wire`](crate::SimulationConfig::wire)): the actual
/// frame sizes the codecs emitted and which encoding carried each message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRoundReport {
    /// Encoded uplink frame length per client, in bytes.
    pub uplink_bytes: Vec<usize>,
    /// Largest per-client uplink frame (the slowest-link phase input).
    pub max_uplink_bytes: usize,
    /// Encoded downlink (broadcast) frame length in bytes.
    pub downlink_bytes: usize,
    /// The concrete encoding each client's uplink frame used (`Auto`
    /// records its per-message choice here).
    pub uplink_codecs: Vec<CodecId>,
    /// The concrete encoding of the downlink frame.
    pub downlink_codec: CodecId,
}

impl WireRoundReport {
    /// Total bytes on the wire this round: every uplink plus one broadcast
    /// downlink.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes.iter().map(|&b| b as u64).sum::<u64>() + self.downlink_bytes as u64
    }
}

/// Everything the simulator reports about one completed round of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index `m` (1-based).
    pub round: usize,
    /// The sparsity degree actually used this round (after stochastic
    /// rounding if the controller requested a fractional `k`).
    pub k_used: usize,
    /// Average mini-batch training loss at the start-of-round weights,
    /// weighted by client data sizes.
    pub train_loss: f64,
    /// Normalized time consumed by this round (computation + communication).
    pub round_time: f64,
    /// Cumulative normalized time at the end of this round.
    pub elapsed_time: f64,
    /// Number of gradient elements broadcast on the downlink.
    pub downlink_elements: usize,
    /// Largest number of scalars any client sent on the uplink.
    pub max_uplink_scalars: usize,
    /// The client ids that participated this round, in ascending order.
    /// With no cohort sampling configured this is simply `0..num_clients`;
    /// with [`SimulationConfig::cohort`](crate::SimulationConfig::cohort)
    /// set it is the seeded sample drawn for this round.
    pub cohort: Vec<usize>,
    /// Per-cohort-member count of elements used from that member's upload
    /// (`|J ∩ J_i|`) — the fairness statistic of Fig. 4 (right). Indexed
    /// parallel to [`RoundReport::cohort`]: `contributions[i]` belongs to
    /// client `cohort[i]`, so with a full-population cohort the vector is
    /// per-client exactly as before.
    pub contributions: Vec<usize>,
    /// Probe measurements for the derivative-sign estimator, if requested.
    pub probe: Option<ProbeReport>,
    /// Byte-level wire accounting, present when the round ran with a wire
    /// configuration (in which case `round_time` is the channel-priced
    /// time, not the scalar proxy).
    pub wire: Option<WireRoundReport>,
    /// Fault accounting, present when the round ran with a
    /// [`FaultModel`](crate::FaultModel) (all-zero counters on clean
    /// rounds). `contributions` stays parallel to `cohort`: lost members
    /// simply contribute zero elements this round.
    pub fault: Option<FaultRoundReport>,
}

impl RoundReport {
    /// Returns the estimator inputs `(loss_prev, loss_now, loss_probe,
    /// probe_round_time, round_time)` if a probe was run this round.
    pub fn estimator_inputs(&self) -> Option<(f64, f64, f64, f64, f64)> {
        self.probe.map(|p| {
            (
                p.loss_prev,
                p.loss_now,
                p.loss_probe,
                p.probe_round_time,
                self.round_time,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(probe: Option<ProbeReport>) -> RoundReport {
        RoundReport {
            round: 3,
            k_used: 100,
            train_loss: 2.5,
            round_time: 3.0,
            elapsed_time: 9.0,
            downlink_elements: 100,
            max_uplink_scalars: 200,
            cohort: vec![0, 1],
            contributions: vec![50, 50],
            probe,
            wire: None,
            fault: None,
        }
    }

    #[test]
    fn wire_report_totals_bytes() {
        let w = WireRoundReport {
            uplink_bytes: vec![100, 250],
            max_uplink_bytes: 250,
            downlink_bytes: 400,
            uplink_codecs: vec![CodecId::DeltaVarint, CodecId::CooF32],
            downlink_codec: CodecId::Bitmap,
        };
        assert_eq!(w.total_bytes(), 750);
    }

    #[test]
    fn estimator_inputs_absent_without_probe() {
        assert!(report(None).estimator_inputs().is_none());
    }

    #[test]
    fn estimator_inputs_present_with_probe() {
        let p = ProbeReport {
            probe_k: 80,
            loss_prev: 2.0,
            loss_now: 1.8,
            loss_probe: 1.9,
            probe_round_time: 2.5,
        };
        let (prev, now, probe, probe_time, round_time) =
            report(Some(p)).estimator_inputs().unwrap();
        assert_eq!(prev, 2.0);
        assert_eq!(now, 1.8);
        assert_eq!(probe, 1.9);
        assert_eq!(probe_time, 2.5);
        assert_eq!(round_time, 3.0);
    }

    #[test]
    fn report_serializes() {
        let r = report(None);
        let clone = r.clone();
        assert_eq!(r, clone);
    }
}
