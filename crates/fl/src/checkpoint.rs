//! Binary checkpoint codec: snapshot writer/reader primitives, the typed
//! [`CheckpointError`], and atomic file I/O.
//!
//! The vendored `serde` is a no-op shim, so checkpoints use the same
//! hand-rolled, fully validated binary style as `agsfl-wire`: little-endian
//! fixed-width scalars, floats as raw IEEE-754 bits (the *bit-identical*
//! resume guarantee forbids any text round-trip), and vectors in the
//! shape-plus-flat-data idiom (`u64` length followed by the flat payload).
//! Every read is bounds-checked and returns [`CheckpointError`] instead of
//! panicking, mirroring the `WireError` decode discipline.
//!
//! Files are written atomically: the payload goes to a `<path>.tmp` sibling
//! first and is then renamed over the destination, so an interrupt mid-write
//! leaves either the previous complete checkpoint or none — never a torn
//! file (see [`write_atomic`]).

use rand_chacha::ChaCha8Rng;

/// Error produced when decoding or loading a checkpoint.
///
/// Mirrors the `WireError` taxonomy: every malformed input maps to a typed
/// variant, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// The leading magic bytes did not match the expected section tag.
    BadMagic {
        /// The four magic bytes the decoder expected.
        expected: [u8; 4],
    },
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The checkpoint was taken from an incompatible configuration.
    Mismatch {
        /// Which fingerprint field disagreed (e.g. `"dim"`, `"seed"`).
        field: &'static str,
    },
    /// A field decoded to an out-of-range or inconsistent value.
    Invalid(&'static str),
    /// Bytes remained after the final field of a section.
    TrailingBytes,
    /// An I/O error while reading or writing a checkpoint file.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::BadMagic { expected } => {
                write!(
                    f,
                    "bad checkpoint magic (expected {:?})",
                    std::str::from_utf8(expected).unwrap_or("????")
                )
            }
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Mismatch { field } => {
                write!(f, "checkpoint does not match this configuration: {field}")
            }
            Self::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
            Self::TrailingBytes => write!(f, "trailing bytes after checkpoint payload"),
            Self::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Append-only binary snapshot encoder.
///
/// All scalars are little-endian; floats are written as raw bit patterns so
/// the decode is bit-exact. Collections are length-prefixed with `u64`.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that reuses `buf` as its backing storage (cleared
    /// first), so steady-state periodic checkpointing is allocation-free.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a section header: four magic bytes plus a format version.
    pub fn header(&mut self, magic: [u8; 4], version: u32) {
        self.buf.extend_from_slice(&magic);
        self.u32(version);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an `f32` as its raw IEEE-754 bits.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes a length-prefixed flat `f32` slice (shape + raw bits).
    pub fn f32s(&mut self, v: &[f32]) {
        self.usize(v.len());
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes an optional `usize` as a presence flag plus value.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.usize(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional `f64` as a presence flag plus raw bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a ChaCha8 stream position (`key`, `counter`, `cursor`).
    pub fn rng(&mut self, rng: &ChaCha8Rng) {
        let (key, counter, cursor) = rng.state();
        for word in key {
            self.u32(word);
        }
        self.u64(counter);
        self.u32(cursor);
    }
}

/// Validating decoder over a snapshot byte slice.
///
/// Every accessor checks bounds and returns [`CheckpointError::Truncated`]
/// (or a more specific variant) rather than panicking.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of undecoded bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns [`CheckpointError::TrailingBytes`] unless the reader is
    /// exactly exhausted.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads and validates a section header written by
    /// [`SnapshotWriter::header`]; returns the stored version if it is at
    /// most `max_version`.
    pub fn header(&mut self, magic: [u8; 4], max_version: u32) -> Result<u32, CheckpointError> {
        let got = self.take(4)?;
        if got != magic {
            return Err(CheckpointError::BadMagic { expected: magic });
        }
        let version = self.u32()?;
        if version == 0 || version > max_version {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        Ok(version)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Invalid("bool flag")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that overflow the
    /// platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Invalid("usize overflow"))
    }

    /// Reads a length prefix and sanity-checks it against the bytes left
    /// (each element occupies at least `min_elem_bytes`), so a corrupt
    /// length cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n.checked_mul(min_elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` from its raw bits.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length-prefixed flat `f32` vector.
    pub fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.usize()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        String::from_utf8(self.bytes()?).map_err(|_| CheckpointError::Invalid("utf-8 string"))
    }

    /// Reads an optional `usize` written by [`SnapshotWriter::opt_usize`].
    pub fn opt_usize(&mut self) -> Result<Option<usize>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.usize()?)
        } else {
            None
        })
    }

    /// Reads an optional `f64` written by [`SnapshotWriter::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// Reads a ChaCha8 stream position and rebuilds the generator.
    pub fn rng(&mut self) -> Result<ChaCha8Rng, CheckpointError> {
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = self.u32()?;
        }
        let counter = self.u64()?;
        let cursor = self.u32()?;
        Ok(ChaCha8Rng::from_state(key, counter, cursor))
    }
}

/// Writes `bytes` to `path` atomically: the payload lands in a `<path>.tmp`
/// sibling first and is renamed over the destination, so a crash mid-write
/// can never leave a torn checkpoint behind.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
    std::fs::write(&tmp, bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Reads a checkpoint file written by [`write_atomic`].
pub fn read_file(path: &std::path::Path) -> Result<Vec<u8>, CheckpointError> {
    std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = SnapshotWriter::new();
        w.header(*b"TEST", 3);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(f64::NEG_INFINITY);
        w.f64(-0.0);
        w.f32(f32::MIN_POSITIVE);
        w.opt_usize(Some(9));
        w.opt_usize(None);
        w.opt_f64(Some(2.5));
        w.str("résumé");
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.header(*b"TEST", 3).unwrap(), 3);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), f64::NEG_INFINITY.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f32().unwrap(), f32::MIN_POSITIVE);
        assert_eq!(r.opt_usize().unwrap(), Some(9));
        assert_eq!(r.opt_usize().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.str().unwrap(), "résumé");
        r.finish().unwrap();
    }

    #[test]
    fn vector_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.f32s(&[1.0, -2.5, f32::NAN]);
        w.usizes(&[0, 1, usize::MAX]);
        w.u64s(&[3, 4]);
        w.bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let f = r.f32s().unwrap();
        assert_eq!(f.len(), 3);
        assert!(f[2].is_nan());
        assert_eq!(r.usizes().unwrap(), vec![0, 1, usize::MAX]);
        assert_eq!(r.u64s().unwrap(), vec![3, 4]);
        assert_eq!(r.bytes().unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn rng_roundtrip_resumes_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..13 {
            rng.next_u32();
        }
        let mut w = SnapshotWriter::new();
        w.rng(&rng);
        let bytes = w.into_bytes();
        let mut restored = SnapshotReader::new(&bytes).rng().unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn truncation_and_corruption_yield_typed_errors() {
        let mut w = SnapshotWriter::new();
        w.header(*b"TEST", 1);
        w.u64s(&[1, 2, 3]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            let result = r.header(*b"TEST", 1).and_then(|_| r.u64s());
            assert!(result.is_err(), "cut at {cut} must error");
        }
        // Wrong magic and unsupported version.
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            r.header(*b"ELSE", 1),
            Err(CheckpointError::BadMagic { expected: *b"ELSE" })
        );
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            r.header(*b"TEST", 0),
            Err(CheckpointError::UnsupportedVersion(1))
        );
        // A bogus huge length prefix must not allocate; it errors.
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX / 2);
        let bogus = w.into_bytes();
        assert!(SnapshotReader::new(&bogus).f32s().is_err());
        // A bool byte outside {0, 1} is invalid.
        assert_eq!(
            SnapshotReader::new(&[2]).bool(),
            Err(CheckpointError::Invalid("bool flag"))
        );
    }

    #[test]
    fn atomic_write_then_read() {
        let path = std::env::temp_dir().join(format!("agsfl_ckpt_test_{}.bin", std::process::id()));
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"payload");
        // Overwrite goes through the same tmp+rename path.
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(read_file(&path), Err(CheckpointError::Io(_))));
    }
}
