//! A federated client: local data, mini-batch sampling, residual accumulator.

use agsfl_ml::data::{ClientShard, MinibatchSampler};
use agsfl_ml::model::Model;
use agsfl_sparse::{ClientUpload, ResidualAccumulator, UploadPlan};
use agsfl_wire::{Codec, WireScratch};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};

/// One federated client of Algorithm 1.
///
/// The client owns its local shard, a mini-batch sampler, its residual
/// accumulator `a_i` and a private RNG (so the simulation is deterministic
/// regardless of the order in which clients are processed, including when
/// gradient computation is parallelized across threads).
#[derive(Debug, Clone)]
pub struct Client {
    id: usize,
    shard: ClientShard,
    weight: f64,
    sampler: MinibatchSampler,
    accumulator: ResidualAccumulator,
    rng: ChaCha8Rng,
    /// Indices (into the shard) of the most recent mini-batch, used by the
    /// derivative-sign estimator to re-evaluate a single sample's loss.
    last_batch: Vec<usize>,
    /// The sample within `last_batch` chosen for the estimator this round.
    probe_sample: Option<usize>,
    /// Reused candidate buffer for top-k extraction, so building the uplink
    /// message allocates no full-dimension temporary after the first round.
    topk_scratch: Vec<(usize, f32)>,
    /// Reused wire-encoding workspace; byte-priced rounds encode the uplink
    /// message here without per-round allocation beyond the emitted frame.
    wire_scratch: WireScratch,
}

impl Client {
    /// Creates a client.
    ///
    /// `weight` is the aggregation weight `C_i / C`; `dim` the model
    /// dimension; `seed` the client's private RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty or `batch_size == 0`.
    pub fn new(
        id: usize,
        shard: ClientShard,
        weight: f64,
        dim: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!shard.is_empty(), "client {id} has no local data");
        let sampler = MinibatchSampler::new(&shard, batch_size);
        Self {
            id,
            shard,
            weight,
            sampler,
            accumulator: ResidualAccumulator::new(dim),
            rng: ChaCha8Rng::seed_from_u64(seed),
            last_batch: Vec::new(),
            probe_sample: None,
            topk_scratch: Vec::new(),
            wire_scratch: WireScratch::new(),
        }
    }

    /// Client identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Aggregation weight `C_i / C`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of local samples `C_i`.
    pub fn num_samples(&self) -> usize {
        self.shard.len()
    }

    /// Borrows the client's local shard.
    pub fn shard(&self) -> &ClientShard {
        &self.shard
    }

    /// Borrows the residual accumulator `a_i`.
    pub fn accumulator(&self) -> &ResidualAccumulator {
        &self.accumulator
    }

    /// Computes the local mini-batch gradient at `params`, adds it to the
    /// accumulator (Line 4 of Algorithm 1) and returns the mini-batch loss.
    ///
    /// Also draws the round's probe sample for the derivative-sign estimator.
    pub fn compute_local_gradient(&mut self, model: &dyn Model, params: &[f32]) -> f32 {
        let (features, labels, indices) = self.sampler.next_batch(&self.shard, &mut self.rng);
        let (loss, grad) = model.loss_and_grad(params, &features, &labels);
        self.accumulator.add(&grad);
        self.probe_sample = Some(indices[self.rng.gen_range(0..indices.len())]);
        self.last_batch = indices;
        loss
    }

    /// Builds the uplink message for the current round according to the
    /// sparsifier's [`UploadPlan`].
    ///
    /// Takes `&mut self` because top-k extraction reuses the client's scratch
    /// buffer instead of allocating a full-dimension temporary every round.
    pub fn build_upload(&mut self, plan: &UploadPlan, k: usize) -> ClientUpload {
        let entries = match plan {
            UploadPlan::TopKOwn => self
                .accumulator
                .top_k_entries_with(k, &mut self.topk_scratch),
            UploadPlan::Coordinates(coords) => self.accumulator.entries_at(coords),
            UploadPlan::Dense => self
                .accumulator
                .as_slice()
                .iter()
                .enumerate()
                .map(|(j, &v)| (j, v))
                .collect(),
        };
        ClientUpload::new(self.id, self.weight, entries)
    }

    /// Encodes an uplink message into a wire frame using the client's own
    /// reused [`WireScratch`] (the message's rank-ordered entries are
    /// staged index-sorted first — entry order is presentation, not
    /// payload; the server re-derives ranks from the decoded values).
    ///
    /// Returns the owned frame — the bytes that would actually cross the
    /// client's uplink.
    pub fn encode_upload(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        upload: &ClientUpload,
    ) -> Vec<u8> {
        self.wire_scratch
            .encode_unsorted(codec, dim, &upload.entries)
            .to_vec()
    }

    /// Resets the accumulator coordinates the server actually used
    /// (Lines 16–17 of Algorithm 1).
    pub fn apply_reset(&mut self, indices: &[usize]) {
        self.accumulator.reset_indices(indices);
    }

    /// Serializes the client's mutable state: RNG position, residual,
    /// sampler epoch, and the estimator's probe bookkeeping. The reused
    /// scratch buffers carry no cross-round state and are not saved.
    pub(crate) fn write_state(&self, w: &mut SnapshotWriter) {
        w.rng(&self.rng);
        w.f32s(self.accumulator.as_slice());
        w.usizes(self.sampler.order());
        w.usize(self.sampler.cursor());
        w.usizes(&self.last_batch);
        w.opt_usize(self.probe_sample);
    }

    /// Restores state captured by [`Client::write_state`] onto a client
    /// constructed from the same dataset and configuration.
    pub(crate) fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        let rng = r.rng()?;
        let residual = r.f32s()?;
        if residual.len() != self.accumulator.dim() {
            return Err(CheckpointError::Mismatch {
                field: "client residual length",
            });
        }
        let order = r.usizes()?;
        if order.len() != self.sampler.order().len() {
            return Err(CheckpointError::Mismatch {
                field: "client sampler order length",
            });
        }
        let cursor = r.usize()?;
        if cursor >= order.len().max(1) {
            return Err(CheckpointError::Invalid("sampler cursor out of range"));
        }
        let mut seen = vec![false; order.len()];
        for &i in &order {
            if i >= order.len() || seen[i] {
                return Err(CheckpointError::Invalid("sampler order not a permutation"));
            }
            seen[i] = true;
        }
        let last_batch = r.usizes()?;
        if last_batch.iter().any(|&i| i >= self.shard.len()) {
            return Err(CheckpointError::Invalid("batch index out of range"));
        }
        let probe_sample = r.opt_usize()?;
        if probe_sample.is_some_and(|i| i >= self.shard.len()) {
            return Err(CheckpointError::Invalid("probe sample out of range"));
        }
        self.rng = rng;
        self.accumulator.restore(&residual);
        self.sampler.restore(order, cursor);
        self.last_batch = last_batch;
        self.probe_sample = probe_sample;
        Ok(())
    }

    /// Loss of the round's probe sample evaluated at `params` — the
    /// single-sample losses `f_{i,h}(·)` of the derivative-sign estimator
    /// (Section IV-E of the paper).
    ///
    /// Returns `None` if no gradient has been computed yet this run.
    pub fn probe_loss(&self, model: &dyn Model, params: &[f32]) -> Option<f32> {
        let idx = self.probe_sample?;
        let (features, label) = self.shard.sample(idx);
        Some(model.sample_loss(params, features, label))
    }

    /// Evaluates the round's probe sample at several weight vectors in one
    /// pass: the sample is fetched once and `f_{i,h}(·)` evaluated per
    /// vector. The estimator needs three losses per client per probe round
    /// (`w(m-1)`, `w(m)`, `w'(m)`); calling [`Client::probe_loss`] three
    /// times re-resolved the sample each time.
    ///
    /// Returns `None` if no gradient has been computed yet this run.
    pub fn probe_losses<const M: usize>(
        &self,
        model: &dyn Model,
        params: [&[f32]; M],
    ) -> Option<[f32; M]> {
        let idx = self.probe_sample?;
        let (features, label) = self.shard.sample(idx);
        Some(params.map(|w| model.sample_loss(w, features, label)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_ml::model::LinearSoftmax;
    use agsfl_tensor::Matrix;

    fn shard(n: usize, dim: usize, classes: usize) -> ClientShard {
        ClientShard::new(
            Matrix::from_fn(n, dim, |i, j| ((i * 3 + j) % 5) as f32 * 0.2 - 0.4),
            (0..n).map(|i| i % classes).collect(),
        )
    }

    fn client_and_model() -> (Client, LinearSoftmax, Vec<f32>) {
        let model = LinearSoftmax::new(4, 3);
        let shard = shard(12, 4, 3);
        let client = Client::new(0, shard, 0.5, model.num_params(), 4, 42);
        let params = vec![0.01; model.num_params()];
        (client, model, params)
    }

    #[test]
    fn gradient_accumulates_in_residual() {
        let (mut client, model, params) = client_and_model();
        assert_eq!(client.accumulator().residual_l1(), 0.0);
        let loss = client.compute_local_gradient(&model, &params);
        assert!(loss > 0.0);
        assert!(client.accumulator().residual_l1() > 0.0);
    }

    #[test]
    fn upload_plans_produce_expected_shapes() {
        let (mut client, model, params) = client_and_model();
        client.compute_local_gradient(&model, &params);
        let topk = client.build_upload(&UploadPlan::TopKOwn, 3);
        assert_eq!(topk.len(), 3);
        let coords = client.build_upload(&UploadPlan::Coordinates(vec![0, 5]), 3);
        assert_eq!(coords.len(), 2);
        assert_eq!(coords.entries[0].0, 0);
        let dense = client.build_upload(&UploadPlan::Dense, 3);
        assert_eq!(dense.len(), model.num_params());
    }

    #[test]
    fn reset_clears_only_used_coordinates() {
        let (mut client, model, params) = client_and_model();
        client.compute_local_gradient(&model, &params);
        let upload = client.build_upload(&UploadPlan::TopKOwn, 2);
        let used: Vec<usize> = upload.entries.iter().map(|&(j, _)| j).collect();
        let before = client.accumulator().residual_l1();
        client.apply_reset(&used);
        let after = client.accumulator().residual_l1();
        assert!(after < before);
        assert!(after > 0.0, "non-selected coordinates keep their residual");
    }

    #[test]
    fn probe_loss_available_after_gradient() {
        let (mut client, model, params) = client_and_model();
        assert!(client.probe_loss(&model, &params).is_none());
        client.compute_local_gradient(&model, &params);
        let loss = client.probe_loss(&model, &params).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn probe_losses_single_pass_matches_individual_calls() {
        let (mut client, model, params) = client_and_model();
        assert!(client.probe_losses(&model, [&params[..]]).is_none());
        client.compute_local_gradient(&model, &params);
        let w_b: Vec<f32> = params.iter().map(|p| p + 0.01).collect();
        let w_c: Vec<f32> = params.iter().map(|p| p - 0.02).collect();
        let [a, b, c] = client.probe_losses(&model, [&params, &w_b, &w_c]).unwrap();
        assert_eq!(Some(a), client.probe_loss(&model, &params));
        assert_eq!(Some(b), client.probe_loss(&model, &w_b));
        assert_eq!(Some(c), client.probe_loss(&model, &w_c));
    }

    #[test]
    fn clients_with_same_seed_are_deterministic() {
        let model = LinearSoftmax::new(4, 3);
        let params = vec![0.02; model.num_params()];
        let mut a = Client::new(0, shard(10, 4, 3), 0.5, model.num_params(), 4, 9);
        let mut b = Client::new(0, shard(10, 4, 3), 0.5, model.num_params(), 4, 9);
        for _ in 0..3 {
            let la = a.compute_local_gradient(&model, &params);
            let lb = b.compute_local_gradient(&model, &params);
            assert_eq!(la, lb);
        }
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
    }

    #[test]
    #[should_panic]
    fn empty_shard_panics() {
        let _ = Client::new(0, ClientShard::empty(4), 0.1, 10, 4, 0);
    }

    #[test]
    fn state_roundtrip_resumes_gradient_stream() {
        let (mut a, model, params) = client_and_model();
        for _ in 0..3 {
            a.compute_local_gradient(&model, &params);
        }
        let mut w = SnapshotWriter::new();
        a.write_state(&mut w);
        let bytes = w.into_bytes();

        let (mut b, _, _) = client_and_model();
        let mut r = SnapshotReader::new(&bytes);
        b.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
        for _ in 0..4 {
            let la = a.compute_local_gradient(&model, &params);
            let lb = b.compute_local_gradient(&model, &params);
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
        assert_eq!(
            a.probe_loss(&model, &params).map(f32::to_bits),
            b.probe_loss(&model, &params).map(f32::to_bits)
        );
    }

    #[test]
    fn state_restore_rejects_wrong_shape() {
        let (mut a, model, params) = client_and_model();
        a.compute_local_gradient(&model, &params);
        let mut w = SnapshotWriter::new();
        a.write_state(&mut w);
        let bytes = w.into_bytes();

        // A client over a different dimension must refuse the snapshot.
        let other_model = LinearSoftmax::new(4, 2);
        let mut other = Client::new(0, shard(12, 4, 3), 0.5, other_model.num_params(), 4, 42);
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            other.read_state(&mut r),
            Err(CheckpointError::Mismatch { .. })
        ));
        // Truncations surface as typed errors, never panics.
        for cut in 0..bytes.len() {
            let (mut fresh, _, _) = client_and_model();
            let mut r = SnapshotReader::new(&bytes[..cut]);
            assert!(fresh.read_state(&mut r).is_err(), "cut at {cut}");
        }
    }
}
