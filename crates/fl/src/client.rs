//! A federated client: local data, mini-batch sampling, residual accumulator.

use agsfl_ml::data::{ClientShard, MinibatchSampler};
use agsfl_ml::model::Model;
use agsfl_sparse::{topk, ClientUpload, ResidualAccumulator, UploadPlan};
use agsfl_wire::{decode_frame, Codec, WireScratch};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One federated client of Algorithm 1.
///
/// The client owns its local shard, a mini-batch sampler, its residual
/// accumulator `a_i` and a private RNG (so the simulation is deterministic
/// regardless of the order in which clients are processed, including when
/// gradient computation is parallelized across threads).
#[derive(Debug, Clone)]
pub struct Client {
    id: usize,
    shard: ClientShard,
    weight: f64,
    sampler: MinibatchSampler,
    accumulator: ResidualAccumulator,
    rng: ChaCha8Rng,
    /// Indices (into the shard) of the most recent mini-batch, used by the
    /// derivative-sign estimator to re-evaluate a single sample's loss.
    last_batch: Vec<usize>,
    /// The sample within `last_batch` chosen for the estimator this round.
    probe_sample: Option<usize>,
    /// Reused candidate buffer for top-k extraction, so building the uplink
    /// message allocates no full-dimension temporary after the first round.
    topk_scratch: Vec<(usize, f32)>,
    /// Reused wire-encoding workspace; byte-priced rounds encode the uplink
    /// message here without per-round allocation beyond the emitted frame.
    wire_scratch: WireScratch,
    /// Reused buffer for the lossy tier's self-decode: the client decodes
    /// its own encoded frame to learn the exact values `v̂` the server will
    /// reconstruct. Round-transient — never part of the persistent state.
    decode_scratch: Vec<(usize, f32)>,
}

impl Client {
    /// Creates a client.
    ///
    /// `weight` is the aggregation weight `C_i / C`; `dim` the model
    /// dimension; `seed` the client's private RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty or `batch_size == 0`.
    pub fn new(
        id: usize,
        shard: ClientShard,
        weight: f64,
        dim: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!shard.is_empty(), "client {id} has no local data");
        let sampler = MinibatchSampler::new(&shard, batch_size);
        Self {
            id,
            shard,
            weight,
            sampler,
            accumulator: ResidualAccumulator::new(dim),
            rng: ChaCha8Rng::seed_from_u64(seed),
            last_batch: Vec::new(),
            probe_sample: None,
            topk_scratch: Vec::new(),
            wire_scratch: WireScratch::new(),
            decode_scratch: Vec::new(),
        }
    }

    /// Creates an unbound cohort slot: an empty shard, zero weight, and a
    /// placeholder RNG. The cohort engine binds a real client onto the slot
    /// each round ([`Client::bind`], shard materialization, then either a
    /// population-row swap or [`Client::reset_persistent`]); a placeholder
    /// never computes a gradient on its own.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub(crate) fn placeholder(feature_dim: usize, dim: usize, batch_size: usize) -> Self {
        let shard = ClientShard::empty(feature_dim);
        let sampler = MinibatchSampler::new(&shard, batch_size);
        Self {
            id: usize::MAX,
            shard,
            weight: 0.0,
            sampler,
            accumulator: ResidualAccumulator::new(dim),
            rng: ChaCha8Rng::seed_from_u64(0),
            last_batch: Vec::new(),
            probe_sample: None,
            topk_scratch: Vec::new(),
            wire_scratch: WireScratch::new(),
            decode_scratch: Vec::new(),
        }
    }

    /// Rebinds this slot to client `id` with aggregation weight `weight`
    /// (cohort hydration; the persistent state is installed separately).
    pub(crate) fn bind(&mut self, id: usize, weight: f64) {
        self.id = id;
        self.weight = weight;
    }

    /// Mutable access to the local shard, so a [`ShardSource`] can
    /// materialize a cohort member's data into the slot's reused buffers.
    ///
    /// [`ShardSource`]: agsfl_ml::data::ShardSource
    pub(crate) fn shard_mut(&mut self) -> &mut ClientShard {
        &mut self.shard
    }

    /// Swaps the client's *persistent* state (RNG stream, residual, sampler
    /// epoch, estimator bookkeeping) with the caller's buffers in O(1).
    ///
    /// Symmetric: the cohort engine calls it once to install a population
    /// row into a slot and once more to put the (updated) row back after
    /// the round. No validation happens here — the buffers must come from
    /// the same client's row, which the population index guarantees.
    pub(crate) fn swap_persistent(
        &mut self,
        rng: &mut ChaCha8Rng,
        residual: &mut Vec<f32>,
        order: &mut Vec<usize>,
        cursor: &mut usize,
        last_batch: &mut Vec<usize>,
        probe_sample: &mut Option<usize>,
    ) {
        std::mem::swap(&mut self.rng, rng);
        self.accumulator.swap_storage(residual);
        self.sampler.swap_state(order, cursor);
        std::mem::swap(&mut self.last_batch, last_batch);
        std::mem::swap(&mut self.probe_sample, probe_sample);
    }

    /// Resets the slot to the pristine persistent state of a client that
    /// has never participated: a fresh RNG at `seed`, a zero residual of
    /// dimension `dim`, an identity sampler epoch over `shard_len` samples,
    /// and no estimator bookkeeping. Allocation-free once the slot's
    /// buffers have grown.
    pub(crate) fn reset_persistent(&mut self, seed: u64, dim: usize, shard_len: usize) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.accumulator.reset_to_dim(dim);
        self.sampler.reset_identity(shard_len);
        self.last_batch.clear();
        self.probe_sample = None;
    }

    /// Client identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Aggregation weight `C_i / C`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of local samples `C_i`.
    pub fn num_samples(&self) -> usize {
        self.shard.len()
    }

    /// Borrows the client's local shard.
    pub fn shard(&self) -> &ClientShard {
        &self.shard
    }

    /// Borrows the residual accumulator `a_i`.
    pub fn accumulator(&self) -> &ResidualAccumulator {
        &self.accumulator
    }

    /// Computes the local mini-batch gradient at `params`, adds it to the
    /// accumulator (Line 4 of Algorithm 1) and returns the mini-batch loss.
    ///
    /// Also draws the round's probe sample for the derivative-sign estimator.
    pub fn compute_local_gradient(&mut self, model: &dyn Model, params: &[f32]) -> f32 {
        let (features, labels, indices) = self.sampler.next_batch(&self.shard, &mut self.rng);
        let (loss, grad) = model.loss_and_grad(params, &features, &labels);
        self.accumulator.add(&grad);
        self.probe_sample = Some(indices[self.rng.gen_range(0..indices.len())]);
        self.last_batch = indices;
        loss
    }

    /// Builds the uplink message for the current round according to the
    /// sparsifier's [`UploadPlan`].
    ///
    /// Takes `&mut self` because top-k extraction reuses the client's scratch
    /// buffer instead of allocating a full-dimension temporary every round.
    pub fn build_upload(&mut self, plan: &UploadPlan, k: usize) -> ClientUpload {
        let entries = match plan {
            UploadPlan::TopKOwn => self
                .accumulator
                .top_k_entries_with(k, &mut self.topk_scratch),
            UploadPlan::Coordinates(coords) => self.accumulator.entries_at(coords),
            UploadPlan::Dense => self
                .accumulator
                .as_slice()
                .iter()
                .enumerate()
                .map(|(j, &v)| (j, v))
                .collect(),
        };
        ClientUpload::new(self.id, self.weight, entries)
    }

    /// Encodes an uplink message into a wire frame using the client's own
    /// reused [`WireScratch`] (the message's rank-ordered entries are
    /// staged index-sorted first — entry order is presentation, not
    /// payload; the server re-derives ranks from the decoded values).
    ///
    /// Returns the owned frame — the bytes that would actually cross the
    /// client's uplink.
    pub fn encode_upload(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        upload: &ClientUpload,
    ) -> Vec<u8> {
        self.wire_scratch
            .encode_unsorted(codec, dim, &upload.entries)
            .to_vec()
    }

    /// [`Client::build_upload`] writing the ranked entries into a
    /// caller-owned buffer instead of allocating a fresh message — the
    /// allocation-free uplink builder of the cohort engine. The entry
    /// sequence is identical to what `build_upload` would package.
    pub(crate) fn build_upload_into(
        &mut self,
        plan: &UploadPlan,
        k: usize,
        out: &mut Vec<(usize, f32)>,
    ) {
        match plan {
            UploadPlan::TopKOwn => {
                self.accumulator
                    .top_k_entries_into(k, &mut self.topk_scratch, out)
            }
            UploadPlan::Coordinates(coords) => self.accumulator.entries_at_into(coords, out),
            UploadPlan::Dense => self.accumulator.dense_entries_into(out),
        }
    }

    /// [`Client::encode_upload`] writing the frame into a caller-owned
    /// buffer (cleared first) instead of allocating one per round.
    pub(crate) fn encode_upload_into(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        entries: &[(usize, f32)],
        frame: &mut Vec<u8>,
    ) {
        frame.clear();
        frame.extend_from_slice(self.wire_scratch.encode_unsorted(codec, dim, entries));
    }

    /// [`Client::encode_upload_into`] for a lossy codec, with quantization
    /// error feedback.
    ///
    /// Encodes `entries` into `frame`, then *self-decodes* the frame to
    /// learn the exact reconstruction `v̂_j` the server will see, and
    /// reports the per-entry quantization error `(j, v_j - v̂_j)` into
    /// `errors` (index-sorted, exact deliveries omitted). The entry list is
    /// rewritten in place with the decoded values — and re-ranked by
    /// magnitude when `rerank` is set (the `TopKOwn` presentation order) —
    /// so it is bit-identical to what the server's own decode produces.
    ///
    /// The error entries later seed the residual reset
    /// ([`Client::apply_reset_with_errors`]): mass the quantizer dropped
    /// this round is carried forward exactly like sparsification residuals,
    /// in the same fused pass.
    pub(crate) fn encode_upload_lossy_into(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        rerank: bool,
        entries: &mut Vec<(usize, f32)>,
        frame: &mut Vec<u8>,
        errors: &mut Vec<(usize, f32)>,
    ) {
        entries.sort_unstable_by_key(|&(j, _)| j);
        frame.clear();
        frame.extend_from_slice(self.wire_scratch.encode_unsorted(codec, dim, entries));
        decode_frame(frame, &mut self.decode_scratch)
            .expect("a frame this client just encoded must decode");
        debug_assert_eq!(self.decode_scratch.len(), entries.len());
        errors.clear();
        errors.extend(
            entries
                .iter()
                .zip(&self.decode_scratch)
                .filter(|(&(_, v), &(_, vhat))| v != vhat)
                .map(|(&(j, v), &(_, vhat))| (j, v - vhat)),
        );
        entries.clear();
        entries.extend_from_slice(&self.decode_scratch);
        if rerank {
            topk::rank_by_magnitude(entries);
        }
    }

    /// Resets the accumulator coordinates the server actually used
    /// (Lines 16–17 of Algorithm 1).
    pub fn apply_reset(&mut self, indices: &[usize]) {
        self.accumulator.reset_indices(indices);
    }

    /// [`Client::apply_reset`] seeding each transmitted coordinate with its
    /// quantization error instead of zero — the lossy tier's error
    /// feedback. With an empty `errors` slice this is bit-identical to
    /// [`Client::apply_reset`].
    pub fn apply_reset_with_errors(&mut self, indices: &[usize], errors: &[(usize, f32)]) {
        self.accumulator.reset_indices_to(indices, errors);
    }

    /// Loss of the round's probe sample evaluated at `params` — the
    /// single-sample losses `f_{i,h}(·)` of the derivative-sign estimator
    /// (Section IV-E of the paper).
    ///
    /// Returns `None` if no gradient has been computed yet this run.
    pub fn probe_loss(&self, model: &dyn Model, params: &[f32]) -> Option<f32> {
        let idx = self.probe_sample?;
        let (features, label) = self.shard.sample(idx);
        Some(model.sample_loss(params, features, label))
    }

    /// Evaluates the round's probe sample at several weight vectors in one
    /// pass: the sample is fetched once and `f_{i,h}(·)` evaluated per
    /// vector. The estimator needs three losses per client per probe round
    /// (`w(m-1)`, `w(m)`, `w'(m)`); calling [`Client::probe_loss`] three
    /// times re-resolved the sample each time.
    ///
    /// Returns `None` if no gradient has been computed yet this run.
    pub fn probe_losses<const M: usize>(
        &self,
        model: &dyn Model,
        params: [&[f32]; M],
    ) -> Option<[f32; M]> {
        let idx = self.probe_sample?;
        let (features, label) = self.shard.sample(idx);
        Some(params.map(|w| model.sample_loss(w, features, label)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_ml::model::LinearSoftmax;
    use agsfl_tensor::Matrix;

    fn shard(n: usize, dim: usize, classes: usize) -> ClientShard {
        ClientShard::new(
            Matrix::from_fn(n, dim, |i, j| ((i * 3 + j) % 5) as f32 * 0.2 - 0.4),
            (0..n).map(|i| i % classes).collect(),
        )
    }

    fn client_and_model() -> (Client, LinearSoftmax, Vec<f32>) {
        let model = LinearSoftmax::new(4, 3);
        let shard = shard(12, 4, 3);
        let client = Client::new(0, shard, 0.5, model.num_params(), 4, 42);
        let params = vec![0.01; model.num_params()];
        (client, model, params)
    }

    #[test]
    fn gradient_accumulates_in_residual() {
        let (mut client, model, params) = client_and_model();
        assert_eq!(client.accumulator().residual_l1(), 0.0);
        let loss = client.compute_local_gradient(&model, &params);
        assert!(loss > 0.0);
        assert!(client.accumulator().residual_l1() > 0.0);
    }

    #[test]
    fn upload_plans_produce_expected_shapes() {
        let (mut client, model, params) = client_and_model();
        client.compute_local_gradient(&model, &params);
        let topk = client.build_upload(&UploadPlan::TopKOwn, 3);
        assert_eq!(topk.len(), 3);
        let coords = client.build_upload(&UploadPlan::Coordinates(vec![0, 5]), 3);
        assert_eq!(coords.len(), 2);
        assert_eq!(coords.entries[0].0, 0);
        let dense = client.build_upload(&UploadPlan::Dense, 3);
        assert_eq!(dense.len(), model.num_params());
    }

    #[test]
    fn reset_clears_only_used_coordinates() {
        let (mut client, model, params) = client_and_model();
        client.compute_local_gradient(&model, &params);
        let upload = client.build_upload(&UploadPlan::TopKOwn, 2);
        let used: Vec<usize> = upload.entries.iter().map(|&(j, _)| j).collect();
        let before = client.accumulator().residual_l1();
        client.apply_reset(&used);
        let after = client.accumulator().residual_l1();
        assert!(after < before);
        assert!(after > 0.0, "non-selected coordinates keep their residual");
    }

    #[test]
    fn probe_loss_available_after_gradient() {
        let (mut client, model, params) = client_and_model();
        assert!(client.probe_loss(&model, &params).is_none());
        client.compute_local_gradient(&model, &params);
        let loss = client.probe_loss(&model, &params).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn probe_losses_single_pass_matches_individual_calls() {
        let (mut client, model, params) = client_and_model();
        assert!(client.probe_losses(&model, [&params[..]]).is_none());
        client.compute_local_gradient(&model, &params);
        let w_b: Vec<f32> = params.iter().map(|p| p + 0.01).collect();
        let w_c: Vec<f32> = params.iter().map(|p| p - 0.02).collect();
        let [a, b, c] = client.probe_losses(&model, [&params, &w_b, &w_c]).unwrap();
        assert_eq!(Some(a), client.probe_loss(&model, &params));
        assert_eq!(Some(b), client.probe_loss(&model, &w_b));
        assert_eq!(Some(c), client.probe_loss(&model, &w_c));
    }

    #[test]
    fn clients_with_same_seed_are_deterministic() {
        let model = LinearSoftmax::new(4, 3);
        let params = vec![0.02; model.num_params()];
        let mut a = Client::new(0, shard(10, 4, 3), 0.5, model.num_params(), 4, 9);
        let mut b = Client::new(0, shard(10, 4, 3), 0.5, model.num_params(), 4, 9);
        for _ in 0..3 {
            let la = a.compute_local_gradient(&model, &params);
            let lb = b.compute_local_gradient(&model, &params);
            assert_eq!(la, lb);
        }
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
    }

    #[test]
    fn upload_into_matches_owned_builder() {
        let (mut client, model, params) = client_and_model();
        client.compute_local_gradient(&model, &params);
        let mut out = Vec::new();
        for plan in [
            UploadPlan::TopKOwn,
            UploadPlan::Coordinates(vec![0, 5, 7]),
            UploadPlan::Dense,
        ] {
            let owned = client.build_upload(&plan, 3);
            client.build_upload_into(&plan, 3, &mut out);
            assert_eq!(owned.entries, out, "{plan:?}");
        }
    }

    #[test]
    fn hydrated_placeholder_matches_fresh_client() {
        let model = LinearSoftmax::new(4, 3);
        let params = vec![0.02; model.num_params()];
        let data = shard(10, 4, 3);
        let mut fresh = Client::new(7, data.clone(), 0.5, model.num_params(), 4, 99);

        let mut slot = Client::placeholder(4, model.num_params(), 4);
        slot.bind(7, 0.5);
        *slot.shard_mut() = data;
        slot.reset_persistent(99, model.num_params(), 10);

        for _ in 0..3 {
            let lf = fresh.compute_local_gradient(&model, &params);
            let ls = slot.compute_local_gradient(&model, &params);
            assert_eq!(lf.to_bits(), ls.to_bits());
        }
        assert_eq!(
            fresh.accumulator().as_slice(),
            slot.accumulator().as_slice()
        );

        // Dehydrate the slot's persistent state, rehydrate it into another
        // placeholder, and the gradient stream continues bit-identically.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut residual = Vec::new();
        let mut order = Vec::new();
        let mut cursor = 0usize;
        let mut last_batch = Vec::new();
        let mut probe = None;
        slot.swap_persistent(
            &mut rng,
            &mut residual,
            &mut order,
            &mut cursor,
            &mut last_batch,
            &mut probe,
        );
        let mut slot2 = Client::placeholder(4, model.num_params(), 4);
        slot2.bind(7, 0.5);
        *slot2.shard_mut() = slot.shard().clone();
        slot2.swap_persistent(
            &mut rng,
            &mut residual,
            &mut order,
            &mut cursor,
            &mut last_batch,
            &mut probe,
        );
        let lf = fresh.compute_local_gradient(&model, &params);
        let ls = slot2.compute_local_gradient(&model, &params);
        assert_eq!(lf.to_bits(), ls.to_bits());
        assert_eq!(
            fresh.accumulator().as_slice(),
            slot2.accumulator().as_slice()
        );
    }

    #[test]
    #[should_panic]
    fn empty_shard_panics() {
        let _ = Client::new(0, ClientShard::empty(4), 0.1, 10, 4, 0);
    }

    #[test]
    fn state_roundtrip_resumes_gradient_stream() {
        use crate::checkpoint::{SnapshotReader, SnapshotWriter};
        use crate::population::ClientPopulation;

        let (mut a, model, params) = client_and_model();
        for _ in 0..3 {
            a.compute_local_gradient(&model, &params);
        }
        // Park the client's persistent state in a population row and
        // serialize it, the shape every checkpoint now uses.
        let mut donor = a.clone();
        let mut pop = ClientPopulation::new();
        pop.dehydrate(0, None, true, &mut donor);
        let mut w = SnapshotWriter::new();
        pop.write_state(&mut w);
        let bytes = w.into_bytes();

        let (mut b, _, _) = client_and_model();
        let mut r = SnapshotReader::new(&bytes);
        let mut restored =
            ClientPopulation::read_state(&mut r, model.num_params(), 1, |_| 12).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.hydrate(0, &mut b), Some(0));
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
        for _ in 0..4 {
            let la = a.compute_local_gradient(&model, &params);
            let lb = b.compute_local_gradient(&model, &params);
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a.accumulator().as_slice(), b.accumulator().as_slice());
        assert_eq!(
            a.probe_loss(&model, &params).map(f32::to_bits),
            b.probe_loss(&model, &params).map(f32::to_bits)
        );
    }

    #[test]
    fn state_restore_rejects_wrong_shape() {
        use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
        use crate::population::ClientPopulation;

        let (mut a, model, params) = client_and_model();
        a.compute_local_gradient(&model, &params);
        let mut pop = ClientPopulation::new();
        pop.dehydrate(0, None, true, &mut a);
        let mut w = SnapshotWriter::new();
        pop.write_state(&mut w);
        let bytes = w.into_bytes();

        // A population over a different model dimension must refuse the
        // snapshot.
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            ClientPopulation::read_state(&mut r, model.num_params() - 1, 1, |_| 12),
            Err(CheckpointError::Mismatch { .. })
        ));
        // A shorter shard invalidates the serialized sampler epoch.
        let mut r = SnapshotReader::new(&bytes);
        assert!(
            ClientPopulation::read_state(&mut r, model.num_params(), 1, |_| 11).is_err(),
            "mismatched shard length must be rejected"
        );
        // Truncations surface as typed errors, never panics.
        for cut in 0..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            assert!(
                ClientPopulation::read_state(&mut r, model.num_params(), 1, |_| 12).is_err()
                    || r.finish().is_err(),
                "cut at {cut}"
            );
        }
    }
}
