//! The synchronized sparse-gradient FL simulation (Algorithm 1).

use agsfl_exec::{Executor, Parallelism};
use agsfl_ml::data::FederatedDataset;
use agsfl_ml::metrics::{
    accuracy_parallel, global_accuracy_parallel, global_evaluation, global_loss_parallel,
    GlobalEvaluation,
};
use agsfl_ml::model::Model;
use agsfl_sparse::{ClientUpload, SelectionResult, ShardedScratch, Sparsifier};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::client::Client;
use crate::round::{ProbeReport, RoundReport};
use crate::time::TimeModel;

/// Static configuration of a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// SGD step size `η`. The paper uses 0.01.
    pub learning_rate: f32,
    /// Mini-batch size per client per round. The paper uses 32.
    pub batch_size: usize,
    /// Normalized time model.
    pub time_model: TimeModel,
    /// Master seed; client RNGs and the server RNG are derived from it.
    pub seed: u64,
    /// Worker-thread policy for the round engine (client pass, server
    /// selection, probe evaluation). Results are bit-identical for every
    /// setting — parallelism only changes wall-clock time.
    pub parallelism: Parallelism,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            batch_size: 32,
            time_model: TimeModel::default(),
            seed: 0,
            parallelism: Parallelism::Auto,
        }
    }
}

/// A synchronized federated-learning run using sparse gradient aggregation.
///
/// The simulation owns the model architecture, the federated dataset, the
/// per-client state (mini-batch samplers and residual accumulators) and a
/// single global weight vector. Keeping one weight vector is sound because
/// every client applies exactly the same downlink update (the paper's
/// synchronization argument for Algorithm 1); an integration test in
/// `tests/` additionally verifies this by replaying updates on independent
/// per-client copies.
pub struct Simulation {
    model: Box<dyn Model>,
    dataset: FederatedDataset,
    sparsifier: Box<dyn Sparsifier>,
    config: SimulationConfig,
    clients: Vec<Client>,
    params: Vec<f32>,
    server_rng: ChaCha8Rng,
    /// Reusable (sharded) server-side selection workspace; buffers are
    /// sized on the first round and reused (including by the probe's second
    /// selection), keeping the per-round server path allocation-free in
    /// steady state on the serial path.
    scratch: ShardedScratch,
    /// The round engine's executor, built once from the configured
    /// [`Parallelism`] and reused by every parallel region.
    executor: Executor,
    round: usize,
    elapsed: f64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("sparsifier", &self.sparsifier.name())
            .field("num_clients", &self.clients.len())
            .field("dim", &self.params.len())
            .field("round", &self.round)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation: initializes the global weights and one client per
    /// dataset shard.
    pub fn new(
        model: Box<dyn Model>,
        dataset: FederatedDataset,
        sparsifier: Box<dyn Sparsifier>,
        config: SimulationConfig,
    ) -> Self {
        assert_eq!(
            model.input_dim(),
            dataset.feature_dim(),
            "model input dimension {} does not match dataset feature dimension {}",
            model.input_dim(),
            dataset.feature_dim()
        );
        assert!(
            model.num_classes() >= dataset.num_classes(),
            "model has fewer classes than the dataset"
        );
        let mut init_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let params = model.init_params(&mut init_rng);
        let dim = params.len();
        let total_samples = dataset.total_samples() as f64;
        let clients = dataset
            .clients()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                Client::new(
                    i,
                    shard.clone(),
                    shard.len() as f64 / total_samples,
                    dim,
                    config.batch_size,
                    config
                        .seed
                        .wrapping_add(1)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(i as u64),
                )
            })
            .collect();
        Self {
            model,
            dataset,
            sparsifier,
            config,
            clients,
            params,
            server_rng: ChaCha8Rng::seed_from_u64(config.seed ^ 0xABCD_EF01),
            scratch: ShardedScratch::new(),
            executor: config.parallelism.build(),
            round: 0,
            elapsed: 0.0,
        }
    }

    /// Model dimension `D`.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative normalized time consumed so far.
    pub fn elapsed_time(&self) -> f64 {
        self.elapsed
    }

    /// The current global weight vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The model architecture.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The sparsifier driving this run.
    pub fn sparsifier(&self) -> &dyn Sparsifier {
        self.sparsifier.as_ref()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The federated dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// Global training loss `L(w)` over all client data at the current
    /// weights, swept client-parallel through the round engine's executor
    /// (bit-identical to the serial sweep; see `agsfl_ml::metrics`).
    pub fn global_train_loss(&self) -> f64 {
        global_loss_parallel(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Test-set accuracy at the current weights (row-chunked parallel sweep,
    /// bit-identical to the serial pass).
    pub fn test_accuracy(&self) -> f64 {
        let test = self.dataset.test();
        accuracy_parallel(
            self.model.as_ref(),
            &self.params,
            &test.features,
            &test.labels,
            &self.executor,
        ) as f64
    }

    /// Weighted training accuracy over all client data at the current
    /// weights (client-parallel sweep, bit-identical to the serial pass).
    pub fn global_train_accuracy(&self) -> f64 {
        global_accuracy_parallel(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Everything an evaluation point reports — global train loss, global
    /// train accuracy and test accuracy — from **one** fused parallel sweep
    /// over one work list, so an `eval_every` point spawns a single worker
    /// region and forwards every client shard exactly once (the individual
    /// accessors forward the shards once per metric).
    ///
    /// Each metric is bit-identical to its individual accessor.
    pub fn evaluate(&self) -> GlobalEvaluation {
        global_evaluation(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            self.dataset.test(),
            &self.executor,
        )
    }

    /// Runs one round of Algorithm 1 with `k`-element sparsification.
    ///
    /// If `probe_k` is given, the round additionally evaluates the
    /// hypothetical `probe_k`-element update needed by the derivative-sign
    /// estimator (Section IV-E) and attaches a [`ProbeReport`]; following the
    /// paper, the probe's extra single-sample loss computations and the small
    /// difference message are not charged to the round time.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn run_round(&mut self, k: usize, probe_k: Option<usize>) -> RoundReport {
        assert!(k > 0, "k must be at least 1");
        let k = k.min(self.dim());
        self.round += 1;
        let dim = self.dim();
        let lr = self.config.learning_rate;

        // (1) One fused parallel pass per client: local gradient computation
        // (Line 4) immediately followed by building the uplink message
        // (Line 6), so each client's residual is still hot in cache when its
        // top-k runs and the round spawns one worker region instead of a
        // parallel gradient pass plus a serial upload loop. Each client owns
        // its RNG and sampler, and the executor returns results in client
        // order, so this is bit-identical to the sequential loop.
        let plan = self.sparsifier.upload_plan(dim, k, &mut self.server_rng);
        let model = self.model.as_ref();
        let params = &self.params;
        let produced: Vec<(f64, f32, ClientUpload)> =
            self.executor.map_mut(&mut self.clients, |client| {
                let loss = client.compute_local_gradient(model, params);
                let upload = client.build_upload(&plan, k);
                (client.weight(), loss, upload)
            });
        let mut train_loss = 0.0f64;
        let mut uploads = Vec::with_capacity(produced.len());
        for (weight, loss, upload) in produced {
            train_loss += weight * loss as f64;
            uploads.push(upload);
        }

        // (2) Server selection and aggregation, sharded across the
        // executor's workers and reusing the round workspace.
        let selection =
            self.sparsifier
                .select_parallel(&uploads, dim, k, &mut self.scratch, &self.executor);

        // Optional probe for the derivative-sign estimator; its second
        // selection shares the same workspace.
        let probe = probe_k.map(|pk| {
            let pk = pk.clamp(1, dim);
            let probe_selection = self.sparsifier.select_parallel(
                &uploads,
                dim,
                pk,
                &mut self.scratch,
                &self.executor,
            );
            self.build_probe_report(pk, &selection, &probe_selection)
        });

        // (3) Downlink: every client applies the identical sparse update.
        selection.aggregated.apply_sgd(&mut self.params, lr);
        for (client, resets) in self.clients.iter_mut().zip(selection.reset_indices.iter()) {
            client.apply_reset(resets);
        }

        // Time accounting.
        let round_time = self.config.time_model.round_time(
            dim,
            selection.max_uplink_scalars(),
            selection.downlink_scalars(),
        );
        self.elapsed += round_time;

        RoundReport {
            round: self.round,
            k_used: k,
            train_loss,
            round_time,
            elapsed_time: self.elapsed,
            downlink_elements: selection.downlink_elements,
            max_uplink_scalars: selection.max_uplink_scalars(),
            contributions: selection.into_contributions(),
            probe,
        }
    }

    /// Evaluates the probe losses `L̃(w(m-1))`, `L̃(w(m))`, `L̃(w'(m))` of the
    /// derivative-sign estimator.
    fn build_probe_report(
        &self,
        probe_k: usize,
        selection: &SelectionResult,
        probe_selection: &SelectionResult,
    ) -> ProbeReport {
        let lr = self.config.learning_rate;
        let model = self.model.as_ref();

        let mut w_now = self.params.clone();
        selection.aggregated.apply_sgd(&mut w_now, lr);
        let mut w_probe = self.params.clone();
        probe_selection.aggregated.apply_sgd(&mut w_probe, lr);

        // One pass per client: the probe sample is fetched once and the
        // three weight vectors evaluated together (historically three
        // independent `probe_loss` calls per client). The per-client
        // results come back in client order, so the serial reduction below
        // accumulates exactly as a sequential loop would.
        let losses: Vec<Option<[f32; 3]>> = self.executor.map_ref(&self.clients, |client| {
            client.probe_losses(model, [&self.params, &w_now, &w_probe])
        });
        let mut prev_sum = 0.0f64;
        let mut now_sum = 0.0f64;
        let mut probe_sum = 0.0f64;
        let mut count = 0usize;
        for loss in losses {
            let Some([prev, now, probe]) = loss else {
                continue;
            };
            prev_sum += prev as f64;
            now_sum += now as f64;
            probe_sum += probe as f64;
            count += 1;
        }
        let n = count.max(1) as f64;
        ProbeReport {
            probe_k,
            loss_prev: prev_sum / n,
            loss_now: now_sum / n,
            loss_probe: probe_sum / n,
            probe_round_time: self
                .config
                .time_model
                .sparse_round_time(self.dim(), probe_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
    use agsfl_ml::model::LinearSoftmax;
    use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, UnidirectionalTopK};

    fn tiny_sim_with(
        sparsifier: Box<dyn Sparsifier>,
        beta: f64,
        seed: u64,
        parallelism: Parallelism,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(beta),
                seed,
                parallelism,
            },
        )
    }

    fn tiny_sim(sparsifier: Box<dyn Sparsifier>, beta: f64, seed: u64) -> Simulation {
        tiny_sim_with(sparsifier, beta, seed, Parallelism::Auto)
    }

    #[test]
    fn round_advances_time_and_counter() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 0);
        let dim = sim.dim();
        let report = sim.run_round(dim / 10, None);
        assert_eq!(report.round, 1);
        assert_eq!(sim.round(), 1);
        assert!(report.round_time > 1.0);
        assert!((sim.elapsed_time() - report.round_time).abs() < 1e-12);
        assert_eq!(report.contributions.len(), sim.num_clients());
    }

    #[test]
    fn training_reduces_global_loss() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 1);
        let k = sim.dim() / 5;
        let initial = sim.global_train_loss();
        for _ in 0..150 {
            sim.run_round(k, None);
        }
        let trained = sim.global_train_loss();
        assert!(
            trained < initial * 0.8,
            "global loss did not decrease: {initial} -> {trained}"
        );
        assert!(sim.test_accuracy() > 0.2);
    }

    #[test]
    fn send_all_round_costs_full_comm() {
        let mut sim = tiny_sim(Box::new(SendAll::new()), 10.0, 2);
        let report = sim.run_round(1, None);
        assert!((report.round_time - 11.0).abs() < 1e-9);
    }

    #[test]
    fn fab_round_time_matches_sparse_formula() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 3);
        let dim = sim.dim();
        let k = dim / 8;
        let report = sim.run_round(k, None);
        let expected = TimeModel::normalized(10.0).sparse_round_time(dim, k);
        assert!(
            (report.round_time - expected).abs() < 1e-9,
            "round time {} vs expected {expected}",
            report.round_time
        );
    }

    #[test]
    fn probe_report_is_produced_and_sensible() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 4);
        let dim = sim.dim();
        let report = sim.run_round(dim / 4, Some(dim / 8));
        let probe = report.probe.expect("probe requested");
        assert_eq!(probe.probe_k, dim / 8);
        assert!(probe.loss_prev.is_finite() && probe.loss_prev > 0.0);
        assert!(probe.loss_now.is_finite());
        assert!(probe.loss_probe.is_finite());
        assert!(probe.probe_round_time < report.round_time);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let mut a = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        let mut b = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        for _ in 0..5 {
            let ka = a.run_round(50, None);
            let kb = b.run_round(50, None);
            assert_eq!(ka, kb);
        }
        assert_eq!(a.params(), b.params());
    }

    /// The parallel round engine's load-bearing invariant: a serial run and
    /// a multi-threaded run of the same seed produce equal round reports
    /// (probes included) and bit-equal final weights, for every sparsifier
    /// family the engine shards.
    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 40 + which as u64;
            let mut serial = tiny_sim_with(make(), 5.0, seed, Parallelism::Serial);
            let mut parallel = tiny_sim_with(make(), 5.0, seed, Parallelism::Threads(4));
            let k = serial.dim() / 6;
            for round in 0..4 {
                let probe = if round % 2 == 0 { Some(k / 2) } else { None };
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "sparsifier {which}, round {round}");
            }
            assert_eq!(
                serial.params(),
                parallel.params(),
                "final weights diverged for sparsifier {which}"
            );
        }
    }

    /// The fused evaluation sweep must equal the individual accessors bit
    /// for bit, serial or parallel, across 1–8 workers.
    #[test]
    fn fused_evaluation_matches_accessors_for_any_worker_count() {
        for threads in [1usize, 2, 3, 5, 8] {
            let parallelism = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(threads)
            };
            let mut sim = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 21, parallelism);
            for _ in 0..3 {
                sim.run_round(sim.dim() / 6, None);
            }
            let eval = sim.evaluate();
            assert_eq!(
                eval.train_loss as f64,
                sim.global_train_loss(),
                "threads={threads}"
            );
            assert_eq!(
                eval.train_accuracy as f64,
                sim.global_train_accuracy(),
                "threads={threads}"
            );
            assert_eq!(
                eval.test_accuracy as f64,
                sim.test_accuracy(),
                "threads={threads}"
            );
        }
    }

    /// Evaluation sweeps are part of the determinism invariant: the same
    /// trained state evaluates to identical bits for every worker count.
    #[test]
    fn serial_and_parallel_evaluations_are_identical() {
        let mut serial = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Serial);
        let mut parallel =
            tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Threads(4));
        for _ in 0..3 {
            serial.run_round(40, None);
            parallel.run_round(40, None);
        }
        assert_eq!(serial.evaluate(), parallel.evaluate());
        assert_eq!(serial.global_train_loss(), parallel.global_train_loss());
        assert_eq!(serial.test_accuracy(), parallel.test_accuracy());
        assert_eq!(
            serial.global_train_accuracy(),
            parallel.global_train_accuracy()
        );
    }

    #[test]
    fn periodic_sparsifier_runs() {
        let mut sim = tiny_sim(Box::new(PeriodicK::new()), 10.0, 5);
        let report = sim.run_round(sim.dim() / 10, None);
        assert_eq!(report.downlink_elements, sim.dim() / 10);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 6);
        let _ = sim.run_round(0, None);
    }
}
