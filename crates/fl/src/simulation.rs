//! The synchronized sparse-gradient FL simulation (Algorithm 1).

use agsfl_exec::{Executor, Parallelism};
use agsfl_ml::data::{ClientShard, FederatedDataset, ShardSource};
use agsfl_ml::metrics::{
    accuracy_parallel, global_accuracy_parallel, global_evaluation, global_loss_parallel,
    GlobalEvaluation,
};
use agsfl_ml::model::Model;
use agsfl_sparse::{topk, ClientUpload, SelectionResult, ShardedScratch, Sparsifier, UploadPlan};
use agsfl_telemetry::{span_end, span_start, CounterId, GaugeId, NoopRecorder, Recorder, SpanId};
use agsfl_wire::{
    decode_frame, decode_frame_with, frame_codec, Auto, Codec, CodecSpec, Precision, WireScratch,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelModel;
use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::fault::{corrupt_frame, FaultConfigError, FaultModel, FaultRoundReport, FaultState};
use crate::population::{draw_cohort, ClientPopulation, Slot};
use crate::round::{ProbeReport, RoundReport, WireRoundReport};
use crate::time::TimeModel;

/// Byte-priced exchange configuration: which wire codec carries the
/// messages and what channel each client sits behind.
///
/// When [`SimulationConfig::wire`] is set, every round actually encodes the
/// uplink/downlink messages (`agsfl_wire`), the server decodes them before
/// aggregation, and the reported `round_time` is the [`ChannelModel`] price
/// of the emitted frames instead of the scalar-proxy
/// [`TimeModel`](crate::TimeModel) time. With a lossless codec the
/// trajectory is bit-identical to the un-wired run — the codecs round-trip
/// bit-exactly and the rank order of top-k uploads is a total order of the
/// values — so only the cost signal the controllers see changes.
///
/// A *lossy* uplink tier ([`agsfl_wire::CodecSpec::is_lossy`], or a
/// [`Precision`] override via [`Simulation::set_wire_precision`]) trades
/// that bit-identity-with-lossless for bytes: the server aggregates the
/// quantized reconstruction, and each client feeds its per-entry
/// quantization error back into its residual accumulator in the same fused
/// pass that handles sparsification residuals. What the lossy tier keeps is
/// **reproducibility** — quantization draws from its own seeded stream
/// keyed only on `(quantization seed, frame content)`, so a lossy run is
/// bit-identical to itself across 1–8 workers and across
/// checkpoint/resume. The downlink broadcast always stays lossless (the
/// server holds no residual to absorb a downlink error).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireConfig {
    /// The wire codec (use [`agsfl_wire::CodecSpec::Auto`] for per-message
    /// size-optimal encoding).
    pub codec: agsfl_wire::CodecSpec,
    /// Per-client channel conditions.
    pub channel: ChannelModel,
}

/// Static configuration of a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// SGD step size `η`. The paper uses 0.01.
    pub learning_rate: f32,
    /// Mini-batch size per client per round. The paper uses 32.
    pub batch_size: usize,
    /// Normalized time model (the paper's "scalars transmitted" proxy).
    pub time_model: TimeModel,
    /// Master seed; client RNGs and the server RNG are derived from it.
    pub seed: u64,
    /// Worker-thread policy for the round engine (client pass, server
    /// selection, probe evaluation). Results are bit-identical for every
    /// setting — parallelism only changes wall-clock time.
    pub parallelism: Parallelism,
    /// Optional byte-priced exchange: encode messages through a wire codec
    /// and price rounds on a per-client [`ChannelModel`] instead of the
    /// scalar proxy.
    pub wire: Option<WireConfig>,
    /// Optional deterministic fault injection: per-client upload dropout,
    /// multi-round crash outages, straggler slowdowns, a round deadline,
    /// and wire-frame corruption with bounded retry. Faults degrade rounds
    /// gracefully — the server aggregates over the surviving cohort and
    /// error feedback absorbs lost updates — and a model with every rate at
    /// zero is bit-identical to `None` (pinned by tests).
    pub fault: Option<FaultModel>,
    /// Optional cohort size: each round a seeded sample of this many
    /// clients participates instead of the whole population (partial
    /// participation, the standard million-client FL setting). Cohorts are
    /// drawn without replacement from a dedicated ChaCha8 stream, serially
    /// before any parallel work. `None` — or any value at least the
    /// population size — runs every client and never touches the cohort
    /// stream, so `Some(N)` is bit-identical to `None`.
    pub cohort: Option<usize>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            batch_size: 32,
            time_model: TimeModel::default(),
            seed: 0,
            parallelism: Parallelism::Auto,
            wire: None,
            fault: None,
            cohort: None,
        }
    }
}

impl SimulationConfig {
    /// Validates the configuration before a run starts, returning a typed
    /// error instead of panicking mid-round. Today this covers the fault
    /// model (out-of-range probabilities, non-positive deadlines, oversized
    /// retry limits, and byte-level faults configured without a wire to act
    /// on); the remaining fields are structurally valid by construction.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if let Some(fault) = &self.fault {
            fault.validate(self.wire.is_some())?;
        }
        Ok(())
    }
}

/// Runtime state of the byte-priced exchange path: the built codecs, the
/// channel, and the server-side encode workspace (downlink frames and
/// hypothetical-`k'` probe pricing reuse it across rounds).
struct WireState {
    /// The configured codec spec; the baseline the precision axis rebuilds
    /// from.
    spec: CodecSpec,
    /// Seed of the quantization RNG stream, derived from the config seed.
    /// Lossy codecs key their stochastic rounding on `(quant_seed, frame
    /// content)` only, so the stream survives any worker schedule and any
    /// checkpoint/resume point.
    quant_seed: u64,
    /// The controller's current precision override (`None` = run the
    /// configured spec). Not checkpointed: the runner re-proposes it from
    /// the restored controller state before the next round.
    precision: Option<Precision>,
    /// The uplink codec currently in force.
    codec: Box<dyn Codec>,
    /// The downlink codec — always lossless: the server holds no residual
    /// accumulator, so a downlink quantization error would be lost forever
    /// rather than fed back.
    downlink: Box<dyn Codec>,
    /// Whether the uplink codec currently in force is lossy (routes the
    /// fused pass through the error-feedback encoder).
    lossy: bool,
    channel: ChannelModel,
    scratch: WireScratch,
}

impl WireState {
    fn new(spec: CodecSpec, quant_seed: u64, channel: ChannelModel) -> Self {
        let downlink: Box<dyn Codec> = if spec.is_lossy() {
            Box::new(Auto)
        } else {
            spec.build()
        };
        Self {
            spec,
            quant_seed,
            precision: None,
            codec: spec.build_seeded(quant_seed),
            downlink,
            lossy: spec.is_lossy(),
            channel,
            scratch: WireScratch::new(),
        }
    }

    /// Installs a precision override for subsequent rounds: `None` restores
    /// the configured spec, [`Precision::F32`] pins a lossless uplink (the
    /// configured spec when it is lossless, [`Auto`] otherwise), and the
    /// lossy tiers swap in their codec seeded from the same quantization
    /// stream. Idempotent — re-proposing the current tier rebuilds nothing.
    fn set_precision(&mut self, precision: Option<Precision>) {
        if precision == self.precision {
            return;
        }
        self.precision = precision;
        let spec = match precision {
            None => self.spec,
            Some(Precision::F32) if !self.spec.is_lossy() => self.spec,
            Some(p) => p.codec_spec(),
        };
        self.codec = spec.build_seeded(self.quant_seed);
        self.lossy = spec.is_lossy();
    }
    /// The channel-priced time a round with sparsity `k'` would have taken:
    /// each client's hypothetical uplink is the `k'`-element prefix of the
    /// message it actually built this round (for top-k plans the prefix is
    /// exactly its top-`k'` message), priced at its exact encoded length;
    /// the downlink is the probe selection's aggregate.
    ///
    /// Uploads are addressed by their carried client id (not their slot), so
    /// the pricing also holds under fault injection when only a surviving
    /// subset of clients delivered this round; for a full cohort the result
    /// is bit-identical to pricing the complete byte vector.
    fn probe_round_time(
        &mut self,
        round_idx: usize,
        dim: usize,
        probe_k: usize,
        uploads: &[ClientUpload],
        probe_selection: &SelectionResult,
    ) -> f64 {
        let uplink_phase = uploads
            .iter()
            .map(|upload| {
                let prefix = &upload.entries[..probe_k.min(upload.entries.len())];
                let bytes = self
                    .scratch
                    .encoded_len_unsorted(self.codec.as_ref(), dim, prefix);
                self.channel.uplink_time(round_idx, upload.client, bytes)
            })
            .fold(0.0f64, f64::max);
        let downlink_bytes = self
            .downlink
            .encoded_len_gradient(&probe_selection.aggregated);
        self.channel.compute_time()
            + uplink_phase
            + self.channel.downlink_phase_time(round_idx, downlink_bytes)
    }
}

/// A synchronized federated-learning run using sparse gradient aggregation.
///
/// The simulation owns the model architecture, a [`ShardSource`] describing
/// the client population, the persistent per-client state in a
/// struct-of-arrays `ClientPopulation`, a small arena of reusable cohort
/// `Slot`s, and a single global weight vector. Keeping one weight vector
/// is sound because every client applies exactly the same downlink update
/// (the paper's synchronization argument for Algorithm 1); an integration
/// test in `tests/` additionally verifies this by replaying updates on
/// independent per-client copies.
///
/// Each round hydrates the sampled cohort into the slot arena, runs the
/// fused gradient/upload pass over the slots, streams surviving wire frames
/// straight into the reusable upload arena the server aggregates from, and
/// dehydrates the persistent state back into the population — so resident
/// memory is `O(cohort + touched_clients · dim)` rather than `O(N)`, and
/// the byte-priced round is allocation-free in steady state.
pub struct Simulation {
    model: Box<dyn Model>,
    source: Box<dyn ShardSource>,
    sparsifier: Box<dyn Sparsifier>,
    config: SimulationConfig,
    /// Persistent per-client state (RNG stream, residual, sampler epoch,
    /// probe bookkeeping), stored only for clients that have participated.
    population: ClientPopulation,
    /// The reusable cohort arena: one slot per cohort member, rebound to
    /// this round's sample and reused across rounds.
    slots: Vec<Slot>,
    /// Persistent aggregation inputs: the first `survivors` entries are
    /// rebuilt each round (decoded straight from the wire frames on the
    /// byte-priced path), reusing their entry buffers.
    uploads: Vec<ClientUpload>,
    params: Vec<f32>,
    server_rng: ChaCha8Rng,
    /// Dedicated stream for cohort draws; untouched on full-population
    /// rounds so sampling is opt-in without perturbing any other stream.
    cohort_rng: ChaCha8Rng,
    /// This round's sampled client ids, ascending (reused buffer).
    cohort: Vec<usize>,
    /// Slot indices of the members whose uploads reached the server
    /// (reused buffer, rebuilt each round).
    survivors: Vec<usize>,
    /// Reusable (sharded) server-side selection workspace; buffers are
    /// sized on the first round and reused (including by the probe's second
    /// selection), keeping the per-round server path allocation-free in
    /// steady state on the serial path. Shrunk once per round when cohort
    /// demand drops, so a small cohort never stays priced at a big one's
    /// high-water mark.
    scratch: ShardedScratch,
    /// The round engine's executor, built once from the configured
    /// [`Parallelism`] and reused by every parallel region.
    executor: Executor,
    /// Byte-priced exchange state, present when the config carries a
    /// [`WireConfig`].
    wire: Option<WireState>,
    /// Fault injector state, present when the config carries a
    /// [`FaultModel`]. Owns its own RNG stream, so its presence never
    /// perturbs the data, client, or server streams.
    fault: Option<FaultState>,
    round: usize,
    elapsed: f64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("sparsifier", &self.sparsifier.name())
            .field("num_clients", &self.source.num_clients())
            .field("cohort_slots", &self.slots.len())
            .field("dim", &self.params.len())
            .field("round", &self.round)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation over a fully materialized dataset (the eager
    /// [`ShardSource`]).
    pub fn new(
        model: Box<dyn Model>,
        dataset: FederatedDataset,
        sparsifier: Box<dyn Sparsifier>,
        config: SimulationConfig,
    ) -> Self {
        Self::with_source(model, Box::new(dataset), sparsifier, config)
    }

    /// Creates a simulation over any [`ShardSource`] — eager datasets and
    /// lazily materialized million-client populations alike. Only the
    /// sampled cohort's shards are ever resident.
    pub fn with_source(
        model: Box<dyn Model>,
        source: Box<dyn ShardSource>,
        sparsifier: Box<dyn Sparsifier>,
        config: SimulationConfig,
    ) -> Self {
        if let Err(error) = config.validate() {
            panic!("invalid simulation config: {error}");
        }
        assert!(
            config.cohort != Some(0),
            "invalid simulation config: cohort size must be positive"
        );
        assert_eq!(
            model.input_dim(),
            source.feature_dim(),
            "model input dimension {} does not match dataset feature dimension {}",
            model.input_dim(),
            source.feature_dim()
        );
        assert!(
            model.num_classes() >= source.num_classes(),
            "model has fewer classes than the dataset"
        );
        let num_clients = source.num_clients();
        assert!(num_clients > 0, "population must not be empty");
        let mut init_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let params = model.init_params(&mut init_rng);
        let dim = params.len();
        let slot_count = config.cohort.map_or(num_clients, |c| c.min(num_clients));
        let slots = (0..slot_count)
            .map(|_| Slot::new(source.feature_dim(), dim, config.batch_size))
            .collect();
        let wire = config.wire.as_ref().map(|w| {
            assert_eq!(
                w.channel.num_clients(),
                num_clients,
                "channel model covers {} clients but the dataset has {}",
                w.channel.num_clients(),
                num_clients
            );
            WireState::new(w.codec, config.seed ^ QUANT_STREAM, w.channel.clone())
        });
        let executor = config.parallelism.build();
        let server_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xABCD_EF01);
        let cohort_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5EED_C0C0_4071_0001);
        let fault = config
            .fault
            .clone()
            .map(|m| FaultState::new(m, num_clients));
        Self {
            model,
            source,
            sparsifier,
            config,
            population: ClientPopulation::new(),
            slots,
            uploads: Vec::new(),
            params,
            server_rng,
            cohort_rng,
            cohort: Vec::new(),
            survivors: Vec::new(),
            scratch: ShardedScratch::new(),
            executor,
            wire,
            fault,
            round: 0,
            elapsed: 0.0,
        }
    }

    /// Model dimension `D`.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.source.num_clients()
    }

    /// Number of cohort slots (the per-round participant count).
    pub fn cohort_size(&self) -> usize {
        self.slots.len()
    }

    /// Number of clients with persistent state resident in the population
    /// (participated online at least once) — the `touched_clients` factor
    /// of the memory bound, exposed for the scale sweep's audits.
    pub fn resident_clients(&self) -> usize {
        self.population.resident_rows()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative normalized time consumed so far.
    pub fn elapsed_time(&self) -> f64 {
        self.elapsed
    }

    /// The current global weight vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The model architecture.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The sparsifier driving this run.
    pub fn sparsifier(&self) -> &dyn Sparsifier {
        self.sparsifier.as_ref()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The round engine's executor. Exposed so telemetry owners can enable
    /// the worker pool's observation-only metrics
    /// ([`Executor::set_metrics_enabled`]) and snapshot them between
    /// rounds; the executor's scheduling is not otherwise configurable
    /// after construction.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The shard source driving this run.
    pub fn source(&self) -> &dyn ShardSource {
        self.source.as_ref()
    }

    /// The federated dataset.
    ///
    /// # Panics
    ///
    /// Panics when the simulation runs over a lazy [`ShardSource`] with no
    /// resident dataset; use [`Simulation::source`] in source-generic code.
    pub fn dataset(&self) -> &FederatedDataset {
        self.source
            .as_dataset()
            .expect("simulation over a lazy source has no resident dataset")
    }

    /// Streams every shard of a lazy source through one reusable buffer and
    /// folds `per_shard(features, labels) * len` in shard order — exactly
    /// the serial association of `agsfl_ml::metrics::global_loss` /
    /// `global_accuracy`, so the lazy sweep is bit-identical to the eager
    /// one for a source that materializes the same shards.
    fn streamed_weighted_sweep(
        &self,
        per_shard: impl Fn(&agsfl_tensor::Matrix, &[usize]) -> f32,
    ) -> f32 {
        let total = self.source.total_samples();
        if total == 0 {
            return 0.0;
        }
        let mut shard = ClientShard::empty(self.source.feature_dim());
        let mut acc = 0.0f64;
        for id in 0..self.source.num_clients() {
            self.source.materialize_into(id, &mut shard);
            if shard.is_empty() {
                continue;
            }
            acc += per_shard(&shard.features, &shard.labels) as f64 * shard.len() as f64;
        }
        (acc / total as f64) as f32
    }

    /// Global training loss `L(w)` over all client data at the current
    /// weights. Over an eager dataset the sweep is client-parallel through
    /// the round engine's executor (bit-identical to the serial sweep; see
    /// `agsfl_ml::metrics`); over a lazy source the shards are streamed one
    /// at a time through a reusable buffer, so evaluation stays `O(shard)`
    /// resident even at a million clients.
    pub fn global_train_loss(&self) -> f64 {
        match self.source.as_dataset() {
            Some(ds) => global_loss_parallel(
                self.model.as_ref(),
                &self.params,
                ds.clients(),
                &self.executor,
            ) as f64,
            None => self
                .streamed_weighted_sweep(|x, labels| self.model.loss(&self.params, x, labels))
                as f64,
        }
    }

    /// Test-set accuracy at the current weights (row-chunked parallel sweep,
    /// bit-identical to the serial pass).
    pub fn test_accuracy(&self) -> f64 {
        let test = self.source.test();
        accuracy_parallel(
            self.model.as_ref(),
            &self.params,
            &test.features,
            &test.labels,
            &self.executor,
        ) as f64
    }

    /// Weighted training accuracy over all client data at the current
    /// weights (client-parallel over an eager dataset, shard-streamed over
    /// a lazy source; both bit-identical to the serial pass).
    pub fn global_train_accuracy(&self) -> f64 {
        match self.source.as_dataset() {
            Some(ds) => global_accuracy_parallel(
                self.model.as_ref(),
                &self.params,
                ds.clients(),
                &self.executor,
            ) as f64,
            None => self
                .streamed_weighted_sweep(|x, labels| self.model.accuracy(&self.params, x, labels))
                as f64,
        }
    }

    /// Everything an evaluation point reports — global train loss, global
    /// train accuracy and test accuracy — from **one** fused parallel sweep
    /// over one work list, so an `eval_every` point spawns a single worker
    /// region and forwards every client shard exactly once (the individual
    /// accessors forward the shards once per metric). Over a lazy source
    /// the train metrics stream shard-by-shard instead.
    ///
    /// Each metric is bit-identical to its individual accessor.
    pub fn evaluate(&self) -> GlobalEvaluation {
        self.evaluate_recorded(&mut NoopRecorder)
    }

    /// [`Simulation::evaluate`] with the sweep's wall time recorded as a
    /// [`SpanId::Evaluate`] span. Telemetry is observation only — the
    /// metrics returned are bit-identical to [`Simulation::evaluate`]'s.
    pub fn evaluate_recorded<R: Recorder>(&self, rec: &mut R) -> GlobalEvaluation {
        let t_eval = span_start(rec);
        let eval = self.evaluate_inner();
        span_end(rec, SpanId::Evaluate, t_eval);
        if rec.enabled() {
            drain_batched_forward(rec);
        }
        eval
    }

    fn evaluate_inner(&self) -> GlobalEvaluation {
        match self.source.as_dataset() {
            Some(ds) => global_evaluation(
                self.model.as_ref(),
                &self.params,
                ds.clients(),
                ds.test(),
                &self.executor,
            ),
            None => GlobalEvaluation {
                train_loss: self.global_train_loss() as f32,
                train_accuracy: self.global_train_accuracy() as f32,
                test_accuracy: self.test_accuracy() as f32,
            },
        }
    }

    /// Installs an uplink precision tier for subsequent rounds — the
    /// precision half of the controllers' 2-D `(k × precision)` action
    /// space. `None` restores the configured codec; [`Precision::F32`]
    /// pins a lossless uplink; the lossy tiers swap in their codec seeded
    /// from the run's dedicated quantization stream, so any sequence of
    /// tier switches stays bit-reproducible across worker counts and
    /// checkpoint/resume. A no-op on a simulation without a wire config
    /// (the scalar-proxy path has no bytes to save).
    ///
    /// The override is deliberately not checkpointed: it is controller
    /// policy, not simulation state, and the runner re-proposes it from the
    /// restored controller before the next round.
    pub fn set_wire_precision(&mut self, precision: Option<Precision>) {
        if let Some(wire) = &mut self.wire {
            wire.set_precision(precision);
        }
    }

    /// Name of the uplink codec currently in force, `None` without a wire
    /// config.
    pub fn wire_codec_name(&self) -> Option<&'static str> {
        self.wire.as_ref().map(|w| w.codec.name())
    }

    /// Runs one round of Algorithm 1 with `k`-element sparsification.
    ///
    /// If `probe_k` is given, the round additionally evaluates the
    /// hypothetical `probe_k`-element update needed by the derivative-sign
    /// estimator (Section IV-E) and attaches a [`ProbeReport`]; following the
    /// paper, the probe's extra single-sample loss computations and the small
    /// difference message are not charged to the round time.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn run_round(&mut self, k: usize, probe_k: Option<usize>) -> RoundReport {
        self.run_round_recorded(k, probe_k, &mut NoopRecorder)
    }

    /// [`Simulation::run_round`] with round-stage telemetry.
    ///
    /// Each stage of the round — hydration, the fused client pass, the
    /// wire-fault pass, server decode, selection, the probe, the downlink,
    /// and the overlapped bookkeeping — is timed into a [`SpanId`] span,
    /// and the report's deterministic facts (cohort size, wire bytes,
    /// fault counts) are mirrored into [`CounterId`]/[`GaugeId`] streams.
    ///
    /// Telemetry is **observation only**: it draws no randomness, touches
    /// no simulation state, and the recorder is consulted through
    /// [`span_start`] so a [`NoopRecorder`] never even reads the clock —
    /// `run_round` compiles down to the uninstrumented round. The golden
    /// trajectories are pinned bit-identical with recording on and off at
    /// every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn run_round_recorded<R: Recorder>(
        &mut self,
        k: usize,
        probe_k: Option<usize>,
        rec: &mut R,
    ) -> RoundReport {
        assert!(k > 0, "k must be at least 1");
        let k = k.min(self.dim());
        self.round += 1;
        let dim = self.dim();
        let lr = self.config.learning_rate;
        let round_idx = self.round - 1;

        // The Hydrate span covers phases (0)–(0b): cohort draw, fault
        // plan, and slot hydration.
        let t_hydrate = span_start(rec);

        // (0) Cohort draw, serial from its dedicated stream before any
        // parallel work (a full-population cohort makes no draw at all —
        // see `draw_cohort`). The buffer is taken out of `self` so the
        // round body can borrow members while mutating other fields.
        let mut cohort = std::mem::take(&mut self.cohort);
        draw_cohort(
            &mut self.cohort_rng,
            self.source.num_clients(),
            self.config.cohort,
            &mut cohort,
        );
        let c = cohort.len();
        debug_assert!(c <= self.slots.len(), "cohort exceeds the slot arena");
        // Aggregation weights are renormalized over the cohort's samples
        // (`C_i / Σ_{j∈cohort} C_j`); with every client participating the
        // denominator is the population total, exactly the historical
        // weighting.
        let cohort_samples: usize = cohort.iter().map(|&id| self.source.shard_len(id)).sum();
        assert!(cohort_samples > 0, "cohort holds no samples");

        // (0a) Fault plan for the round, drawn serially in cohort order from
        // the injector's dedicated stream *before* any parallel work: the
        // plan — never the worker schedule — decides every fault, so the
        // determinism invariant (identical seeds, identical bits, any
        // thread count) survives fault injection unchanged. Plans are
        // indexed parallel to the cohort.
        let plans = self.fault.as_mut().map(|f| {
            let max_attempts = f.model().max_retries + 1;
            f.plan_round_for(round_idx, max_attempts, &cohort)
        });
        let mut fault_report = plans.as_ref().map(|_| FaultRoundReport::default());

        // (0b) Hydration, serial: bind each slot to its cohort member,
        // materialize the shard if the slot held a different client's last
        // round, and install the member's persistent state — swapped in
        // O(1) from the population for returning participants, freshly
        // derived from `(seed, id)` for first-timers (the same derivation
        // the owned-client path used at construction, so lazy creation is
        // invisible to the trajectory).
        let seed = self.config.seed;
        for (pos, &id) in cohort.iter().enumerate() {
            let slot = &mut self.slots[pos];
            let shard_len = self.source.shard_len(id);
            slot.client
                .bind(id, shard_len as f64 / cohort_samples as f64);
            slot.cohort_pos = pos;
            slot.offline = plans.as_ref().is_some_and(|p| p[pos].offline);
            slot.dropped = plans.as_ref().is_some_and(|p| p[pos].dropped);
            slot.online = false;
            slot.loss = 0.0;
            slot.errors.clear();
            if slot.shard_of != Some(id) {
                self.source.materialize_into(id, slot.client.shard_mut());
                slot.shard_of = Some(id);
            }
            slot.cached_row = self.population.hydrate(id, &mut slot.client);
            if slot.cached_row.is_none() {
                slot.client.reset_persistent(
                    seed.wrapping_add(1)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(id as u64),
                    dim,
                    shard_len,
                );
            }
        }
        span_end(rec, SpanId::Hydrate, t_hydrate);

        // (1) One fused parallel pass per cohort slot: local gradient
        // computation (Line 4) immediately followed by building the uplink
        // message (Line 6), so each member's residual is still hot in cache
        // when its top-k runs and the round spawns one worker region
        // instead of a parallel gradient pass plus a serial upload loop.
        // Each slot owns its member's RNG and sampler and writes only into
        // its own reused buffers, so this is bit-identical to the
        // sequential loop and allocation-free in steady state. On the
        // byte-priced path each member additionally encodes its message
        // into its slot's wire frame in the same pass.
        let plan = self.sparsifier.upload_plan(dim, k, &mut self.server_rng);
        let rerank = matches!(plan, UploadPlan::TopKOwn);
        let model = self.model.as_ref();
        let params = &self.params;
        let wire_codec: Option<(&dyn Codec, bool)> =
            self.wire.as_ref().map(|w| (w.codec.as_ref(), w.lossy));
        let client_pass = |slot: &mut Slot| {
            if slot.offline {
                // Mid-outage: no compute, no upload, and none of the
                // member's streams advance, so recovery resumes them at
                // exactly the position an always-online run never left.
                return;
            }
            slot.loss = slot.client.compute_local_gradient(model, params);
            slot.client.build_upload_into(&plan, k, &mut slot.entries);
            match wire_codec {
                Some((codec, true)) => {
                    // Lossy tier: encode, self-decode to learn the server's
                    // exact reconstruction, capture the per-entry
                    // quantization error for the residual reset, and
                    // rewrite the entry list with the decoded values —
                    // still in this one fused pass, per slot, with no
                    // cross-slot state (the quantization stream is keyed on
                    // frame content, not worker schedule).
                    slot.client.encode_upload_lossy_into(
                        codec,
                        dim,
                        rerank,
                        &mut slot.entries,
                        &mut slot.frame,
                        &mut slot.errors,
                    );
                }
                Some((codec, false)) => {
                    slot.client
                        .encode_upload_into(codec, dim, &slot.entries, &mut slot.frame);
                }
                None => {}
            }
            slot.online = true;
        };
        let mut train_loss = 0.0f64;
        self.survivors.clear();
        let faulty = plans.is_some();
        let wired = self.wire.is_some();
        // The ClientPass span covers the fused gradient/encode pass; on
        // the clean path that includes the pipelined server decode (the
        // ServerDecode span then measures only the fault path's separate
        // decode loop below).
        let t_client = span_start(rec);
        if !faulty {
            // Clean path: every member survives, so the server can start
            // consuming uploads while later members are still encoding. The
            // client pass runs as the *producer* stage of a pipeline over
            // the slot arena; the server-side decode into the aggregation
            // inputs (historically a separate phase (1b) after a full
            // barrier) is the *consumer*, running on this thread in strict
            // cohort order as frames complete. The in-order consumer is
            // what keeps the loss reduction and the upload list
            // bit-identical to the sequential loop.
            while self.uploads.len() < c {
                self.uploads.push(ClientUpload::new(0, 0.0, Vec::new()));
            }
            let uploads = &mut self.uploads;
            let survivors = &mut self.survivors;
            self.executor
                .pipeline_mut(&mut self.slots[..c], client_pass, |pos, slot, ()| {
                    train_loss += slot.client.weight() * slot.loss as f64;
                    survivors.push(pos);
                    // (1b, fused) Decode the surviving frame *directly
                    // into* its aggregation input — no intermediate
                    // per-client gradient is allocated — so selection
                    // genuinely runs on what crossed the wire. See the
                    // faulty-path block below for the bit-identity argument
                    // (decode is exact or client-pre-reconciled; re-ranking
                    // is a total order); the debug assertion pins it here
                    // too.
                    let upload = &mut uploads[pos];
                    upload.client = slot.client.id();
                    upload.weight = slot.client.weight();
                    upload.entries.clear();
                    if wired {
                        let (frame_dim, _) = decode_frame(&slot.frame, &mut upload.entries)
                            .expect("self-encoded frame must decode");
                        debug_assert_eq!(frame_dim, dim);
                        if rerank {
                            topk::rank_by_magnitude(&mut upload.entries);
                        }
                        debug_assert!(
                            upload.entries.len() == slot.entries.len()
                                && upload
                                    .entries
                                    .iter()
                                    .zip(slot.entries.iter())
                                    .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                            "decoded uploads must be bit-identical to the built ones"
                        );
                    } else {
                        upload.entries.extend_from_slice(&slot.entries);
                    }
                });
        } else {
            // Fault path: survivorship is only known after the wire-level
            // fault pass below, so the client pass stays a plain parallel
            // region and the decode runs afterwards over the compacted
            // survivor list.
            let _: Vec<()> = self.executor.map_mut(&mut self.slots[..c], client_pass);
            for (pos, slot) in self.slots[..c].iter().enumerate() {
                if slot.offline {
                    if let Some(fr) = fault_report.as_mut() {
                        fr.offline += 1;
                    }
                    continue;
                }
                train_loss += slot.client.weight() * slot.loss as f64;
                if slot.dropped {
                    // Upload lost in transit, no retry. The computed
                    // gradient stays in the member's residual accumulator
                    // (no reset will target it), so error feedback re-sends
                    // the mass later.
                    if let Some(fr) = fault_report.as_mut() {
                        fr.dropped += 1;
                    }
                    continue;
                }
                self.survivors.push(pos);
            }
        }
        span_end(rec, SpanId::ClientPass, t_client);

        // (1a) Wire-level fault pass, serial in cohort order: replay every
        // corrupted uplink attempt through the *real* validated decoder
        // (the `WireError` path), price retries with backoff on the
        // member's own link, and enforce the round deadline. A damaged
        // frame that happens to decode is still treated as detected-corrupt
        // — the link-layer checksum stand-in — so corruption delays rounds
        // but can never skew the training trajectory. Survivors are
        // compacted in place; uplink times are indexed parallel to the
        // cohort.
        let mut uplink_times: Vec<Option<f64>> = Vec::new();
        let t_wire_fault = span_start(rec);
        if let (Some(plans), Some(wire), Some(fr), Some(fault)) = (
            plans.as_ref(),
            self.wire.as_ref(),
            fault_report.as_mut(),
            self.fault.as_ref(),
        ) {
            let fmodel = fault.model();
            let max_attempts = fmodel.max_retries + 1;
            let backoff = fmodel.retry_backoff;
            let deadline = fmodel.deadline;
            uplink_times = vec![None; c];
            let mut damaged_entries: Vec<(usize, f32)> = Vec::new();
            let mut kept = 0usize;
            for i in 0..self.survivors.len() {
                let pos = self.survivors[i];
                let slot = &self.slots[pos];
                let frame = &slot.frame;
                let p = &plans[pos];
                if p.slowdown > 1.0 {
                    fr.stragglers += 1;
                }
                let attempt_time = wire.channel.uplink_time_scaled(
                    round_idx,
                    slot.client.id(),
                    frame.len(),
                    p.slowdown,
                );
                for &corruption in &p.corruptions {
                    damaged_entries.clear();
                    let damaged = corrupt_frame(frame, corruption);
                    let _ = decode_frame(&damaged, &mut damaged_entries);
                    fr.corrupt_frames += 1;
                }
                let failures = p.corruptions.len();
                let lost = failures >= max_attempts;
                let attempts_made = if lost { max_attempts } else { failures + 1 };
                fr.retries += attempts_made - 1;
                fr.retransmitted_bytes += frame.len() as u64 * (attempts_made - 1) as u64;
                let total_time =
                    attempt_time * attempts_made as f64 + backoff * (attempts_made - 1) as f64;
                if lost {
                    // Retries exhausted; the server still listened through
                    // every failed attempt, so the time counts toward the
                    // uplink phase (unless a deadline caps it below).
                    fr.corrupt_lost += 1;
                    uplink_times[pos] = Some(total_time);
                    continue;
                }
                if deadline.is_some_and(|d| total_time > d) {
                    fr.deadline_dropped += 1;
                    continue;
                }
                uplink_times[pos] = Some(total_time);
                self.survivors[kept] = pos;
                kept += 1;
            }
            self.survivors.truncate(kept);
        }
        span_end(rec, SpanId::WireFault, t_wire_fault);
        if let Some(fr) = fault_report.as_mut() {
            fr.survivors = self.survivors.len();
        }

        // (1b) Fill the persistent aggregation inputs, one per surviving
        // member, reusing their entry buffers. On the clean path this
        // already happened inside the pipeline consumer above (survivors
        // are the identity mapping there, so `uploads[pos]` and
        // `uploads[u_idx]` coincide); under fault injection it runs here,
        // over the survivor list the wire-fault pass just compacted. On the
        // byte-priced path the server decodes each surviving frame
        // *directly into* its aggregation input — no intermediate
        // per-client gradient is allocated — so selection genuinely runs on
        // what crossed the wire. Re-ranking the decoded entries reproduces
        // the built uploads bit for bit — on the lossless tier because
        // decode is exact and the top-k rank order is a total order of the
        // values (`topk::compare_magnitude_then_index`); on the lossy tier
        // because the client already rewrote its entry list with its own
        // decode of the same frame. The debug assertion pins both every
        // test run.
        let s = self.survivors.len();
        let t_decode = span_start(rec);
        if faulty {
            while self.uploads.len() < s {
                self.uploads.push(ClientUpload::new(0, 0.0, Vec::new()));
            }
            for (u_idx, &pos) in self.survivors.iter().enumerate() {
                let slot = &self.slots[pos];
                let upload = &mut self.uploads[u_idx];
                upload.client = slot.client.id();
                upload.weight = slot.client.weight();
                upload.entries.clear();
                if wired {
                    let (frame_dim, _) = decode_frame(&slot.frame, &mut upload.entries)
                        .expect("self-encoded frame must decode");
                    debug_assert_eq!(frame_dim, dim);
                    if rerank {
                        topk::rank_by_magnitude(&mut upload.entries);
                    }
                    debug_assert!(
                        upload.entries.len() == slot.entries.len()
                            && upload
                                .entries
                                .iter()
                                .zip(slot.entries.iter())
                                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                        "decoded uploads must be bit-identical to the built ones"
                    );
                } else {
                    upload.entries.extend_from_slice(&slot.entries);
                }
            }
        }
        span_end(rec, SpanId::ServerDecode, t_decode);

        // (2) Server selection and aggregation, sharded across the
        // executor's workers and reusing the round workspace.
        let t_select = span_start(rec);
        let selection = self.sparsifier.select_parallel(
            &self.uploads[..s],
            dim,
            k,
            &mut self.scratch,
            &self.executor,
        );
        span_end(rec, SpanId::Selection, t_select);

        // Optional probe for the derivative-sign estimator; its second
        // selection shares the same workspace. On the byte-priced path the
        // hypothetical `θ_m(k')` is re-priced through the channel model
        // (over the surviving cohort when faults are active — the probe is
        // priced as a clean hypothetical round of those clients).
        let t_probe = span_start(rec);
        let probe = probe_k.map(|pk| {
            let pk = pk.clamp(1, dim);
            let probe_selection = self.sparsifier.select_parallel(
                &self.uploads[..s],
                dim,
                pk,
                &mut self.scratch,
                &self.executor,
            );
            let mut report = self.build_probe_report(c, pk, &selection, &probe_selection);
            if let Some(wire) = &mut self.wire {
                report.probe_round_time =
                    wire.probe_round_time(round_idx, dim, pk, &self.uploads[..s], &probe_selection);
            }
            report
        });
        span_end(rec, SpanId::Probe, t_probe);

        // (3) Downlink: every client applies the identical sparse update.
        // On the byte-priced path the broadcast is encoded, priced, and
        // *decoded* before application — the weights advance by what
        // crossed the wire (bit-identical to the local aggregate because
        // the codecs are lossless; debug-asserted below).
        //
        // The O(N)-links broadcast *pricing* sweep
        // (`ChannelModel::downlink_phase_time`) is deferred out of this
        // match: it reads only the channel, so phase (4) below overlaps it
        // with the end-of-round bookkeeping on a pool worker. Everything
        // that feeds the next round's gradients — the weight update itself
        // — still happens here, before the match ends: `params` is a true
        // dependency of the next round's compute and is never raced.
        // `time_before_downlink` carries the compute + uplink phases.
        let t_broadcast = span_start(rec);
        let (time_before_downlink, downlink_bytes, wire_report) = match &mut self.wire {
            None => {
                selection.aggregated.apply_sgd(&mut self.params, lr);
                let round_time = self.config.time_model.round_time(
                    dim,
                    selection.max_uplink_scalars(),
                    selection.downlink_scalars(),
                );
                (round_time, None, None)
            }
            Some(wire) => {
                let frame = wire
                    .downlink
                    .encode_gradient_into(&selection.aggregated, &mut wire.scratch);
                let downlink_bytes = frame.len();
                let downlink_codec = frame_codec(frame).expect("freshly encoded frame");
                #[cfg(debug_assertions)]
                {
                    let broadcast =
                        agsfl_wire::decode_gradient(frame).expect("self-encoded frame must decode");
                    debug_assert!(
                        broadcast
                            .entries()
                            .iter()
                            .zip(selection.aggregated.entries().iter())
                            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
                            && broadcast.nnz() == selection.aggregated.nnz(),
                        "decoded broadcast must be bit-identical to the aggregate"
                    );
                }
                // Streaming application: the decoded broadcast coordinates
                // go straight into the weight vector, visiting them in
                // frame order — exactly the entry order `apply_sgd` on the
                // decoded gradient used to walk, with no intermediate
                // gradient materialized.
                let params = &mut self.params;
                decode_frame_with(frame, |j, v| params[j] -= lr * v)
                    .expect("self-encoded frame must decode");
                // Byte accounting is indexed parallel to the cohort — the
                // per-client identity mapping on a full clean cohort, and
                // zero bytes for members that never delivered under fault
                // injection.
                let mut uplink_bytes = vec![0usize; c];
                for &pos in &self.survivors {
                    uplink_bytes[pos] = self.slots[pos].frame.len();
                }
                let uplink_codecs = self
                    .survivors
                    .iter()
                    .map(|&pos| frame_codec(&self.slots[pos].frame).expect("freshly encoded frame"))
                    .collect();
                let time_before_downlink = if let Some(fr) = fault_report.as_ref() {
                    // Fault path: the uplink phase is the slowest delivery
                    // the server actually waited out — retries, backoff and
                    // straggler slowdown included, corrupt-lost members'
                    // futile attempts included — capped at the deadline,
                    // which the server waits out in full whenever anyone is
                    // missing. With every rate at zero this folds the exact
                    // per-member times of the clean path in the same order,
                    // so the price is bit-identical to `round_time`.
                    let deadline = self
                        .fault
                        .as_ref()
                        .expect("fault state present")
                        .model()
                        .deadline;
                    let uplink_phase = match deadline {
                        Some(d) if fr.lost() > 0 => d,
                        _ => uplink_times
                            .iter()
                            .flatten()
                            .copied()
                            .fold(0.0f64, f64::max),
                    };
                    wire.channel.compute_time() + uplink_phase
                } else {
                    // Clean path: the uplink phase waits for the cohort's
                    // own links; the downlink is still a broadcast priced
                    // over every link (the server pushes the global model
                    // to the whole population) — added after the overlapped
                    // sweep below. For a full cohort the total is exactly
                    // `ChannelModel::round_time`.
                    wire.channel.compute_time()
                        + wire
                            .channel
                            .uplink_phase_time_for(round_idx, &cohort, &uplink_bytes)
                };
                let max_uplink_bytes = uplink_bytes.iter().copied().max().unwrap_or(0);
                let report = WireRoundReport {
                    uplink_bytes,
                    max_uplink_bytes,
                    downlink_bytes,
                    uplink_codecs,
                    downlink_codec,
                };
                (time_before_downlink, Some(downlink_bytes), Some(report))
            }
        };
        span_end(rec, SpanId::BroadcastApply, t_broadcast);
        // (4) End-of-round bookkeeping, overlapped with the deferred
        // broadcast-pricing sweep. The downlink phase price folds a max
        // over *every* link in the channel (the server pushes the global
        // model to the whole population), which is O(N) at million-client
        // scale — by far the priciest read-only computation left in the
        // round. It runs on a pool worker while this thread performs the
        // resets, contributions, and dehydration; neither side touches the
        // other's state (the sweep reads only the channel and two scalars),
        // and `f64` addition of the two finished phase times afterwards is
        // schedule-independent, so the overlap cannot change a single bit.
        //
        // Why not overlap the broadcast *application* with next-round
        // gradients, as the pipelining dream goes? Because that edge is a
        // true dependency: clients compute gradients at the post-broadcast
        // weights. The pricing sweep is the part of the downlink with no
        // consumer until `RoundReport`, so it is the part that legally
        // moves off the critical path.
        //
        // Bookkeeping on this thread: resets and contributions target the
        // surviving members' slots — exactly the members whose uploads were
        // aggregated get their used coordinates reset, so a lost member's
        // residual keeps its update. On the lossy tier each reset
        // coordinate is seeded with its quantization error instead of zero
        // (error feedback); `errors` is empty on lossless rounds, which
        // makes this bit-identical to a plain reset. Dehydration then
        // returns every member's persistent state to the population
        // (first-time online participants get a new row; pristine offline
        // first-timers are dropped and recreated identically on their next
        // appearance), and the selection workspace notes this round's
        // demand so a shrinking cohort or `k` releases capacity instead of
        // staying priced at its high-water mark.
        let downlink_elements = selection.downlink_elements;
        let max_uplink_scalars = selection.max_uplink_scalars();
        let mut contributions = vec![0usize; c];
        let channel = self.wire.as_ref().map(|w| &w.channel);
        let executor = &self.executor;
        let slots = &mut self.slots;
        let population = &mut self.population;
        let scratch = &mut self.scratch;
        let survivors = &self.survivors;
        // The Bookkeeping span covers the whole joined region; the
        // DownlinkPricing span is timed inside the overlapped closure (it
        // runs on a pool worker, so its nanoseconds come back with the
        // result and are recorded here on the round thread). The two spans
        // overlap by construction.
        let t_bookkeeping = span_start(rec);
        let want_pricing_span = rec.enabled();
        let ((), (downlink_time, pricing_ns)) = executor.join(
            || {
                for (u_idx, resets) in selection.reset_indices.iter().enumerate() {
                    let slot = &mut slots[survivors[u_idx]];
                    slot.client.apply_reset_with_errors(resets, &slot.errors);
                }
                for (u_idx, used) in selection.into_contributions().into_iter().enumerate() {
                    contributions[survivors[u_idx]] = used;
                }
                for (pos, &id) in cohort.iter().enumerate() {
                    let slot = &mut slots[pos];
                    population.dehydrate(id, slot.cached_row, slot.online, &mut slot.client);
                    slot.cached_row = None;
                }
                scratch.shrink_to_recent_demand();
            },
            || {
                let t0 = want_pricing_span.then(std::time::Instant::now);
                let time = match (channel, downlink_bytes) {
                    (Some(channel), Some(bytes)) => channel.downlink_phase_time(round_idx, bytes),
                    _ => 0.0,
                };
                (time, t0.map(|t0| t0.elapsed().as_nanos() as u64))
            },
        );
        span_end(rec, SpanId::Bookkeeping, t_bookkeeping);
        if let Some(ns) = pricing_ns {
            rec.span(SpanId::DownlinkPricing, ns);
        }
        let round_time = time_before_downlink + downlink_time;
        self.elapsed += round_time;

        let report = RoundReport {
            round: self.round,
            k_used: k,
            train_loss,
            round_time,
            elapsed_time: self.elapsed,
            downlink_elements,
            max_uplink_scalars,
            cohort: cohort.clone(),
            contributions,
            probe,
            wire: wire_report,
            fault: fault_report,
        };
        if rec.enabled() {
            record_round_report(rec, &report);
            rec.gauge(
                GaugeId::ResidentClients,
                self.population.resident_rows() as u64,
            );
            drain_batched_forward(rec);
        }
        self.cohort = cohort;
        report
    }

    /// Evaluates the probe losses `L̃(w(m-1))`, `L̃(w(m))`, `L̃(w'(m))` of the
    /// derivative-sign estimator.
    fn build_probe_report(
        &self,
        cohort_len: usize,
        probe_k: usize,
        selection: &SelectionResult,
        probe_selection: &SelectionResult,
    ) -> ProbeReport {
        let lr = self.config.learning_rate;
        let model = self.model.as_ref();

        let mut w_now = self.params.clone();
        selection.aggregated.apply_sgd(&mut w_now, lr);
        let mut w_probe = self.params.clone();
        probe_selection.aggregated.apply_sgd(&mut w_probe, lr);

        // One pass per cohort slot (every hydrated member, offline ones
        // included — their stale probe sample is exactly what the
        // historical all-client sweep evaluated): the probe sample is
        // fetched once and the three weight vectors evaluated together.
        // The per-member results come back in cohort order, so the serial
        // reduction below accumulates exactly as a sequential loop would.
        let losses: Vec<Option<[f32; 3]>> =
            self.executor.map_ref(&self.slots[..cohort_len], |slot| {
                slot.client
                    .probe_losses(model, [&self.params, &w_now, &w_probe])
            });
        let mut prev_sum = 0.0f64;
        let mut now_sum = 0.0f64;
        let mut probe_sum = 0.0f64;
        let mut count = 0usize;
        for loss in losses {
            let Some([prev, now, probe]) = loss else {
                continue;
            };
            prev_sum += prev as f64;
            now_sum += now as f64;
            probe_sum += probe as f64;
            count += 1;
        }
        let n = count.max(1) as f64;
        ProbeReport {
            probe_k,
            loss_prev: prev_sum / n,
            loss_now: now_sum / n,
            loss_probe: probe_sum / n,
            probe_round_time: self
                .config
                .time_model
                .sparse_round_time(self.dim(), probe_k),
        }
    }

    /// Serializes the complete mutable simulation state — round counter,
    /// elapsed time, global weights, server RNG position, every client's
    /// RNG/residual/sampler/probe state, and the fault injector — prefixed
    /// by a configuration fingerprint. A run restored from these bytes into
    /// a simulation built from the same inputs continues *bit-identically*
    /// to the uninterrupted run (pinned by tests across sparsifiers, thread
    /// counts, and interrupt points).
    pub fn save_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.save_state_into(&mut buf);
        buf
    }

    /// [`Simulation::save_state`] writing into a caller-owned buffer
    /// (cleared first), so periodic checkpointing reuses one allocation
    /// across rounds.
    pub fn save_state_into(&self, buf: &mut Vec<u8>) {
        let mut w = SnapshotWriter::with_buf(std::mem::take(buf));
        w.header(SIM_MAGIC, SIM_VERSION);
        // Fingerprint: enough static configuration to reject a restore into
        // a differently-shaped simulation with a typed error.
        w.usize(self.params.len());
        w.usize(self.source.num_clients());
        w.u64(self.config.seed);
        w.usize(self.config.batch_size);
        w.str(self.sparsifier.name());
        w.bool(self.config.wire.is_some());
        w.bool(self.fault.is_some());
        w.opt_usize(self.config.cohort);
        // v3: the configured wire codec, so a lossy-tier checkpoint cannot
        // silently resume under a different quantization scheme.
        w.str(self.config.wire.as_ref().map_or("none", |w| w.codec.name()));
        // Mutable state. Only the *resident* population rows are written
        // (clients that participated online at least once) — an untouched
        // client's state is a pure function of `(seed, id)` and is
        // recreated on demand, so a million-client snapshot stays
        // proportional to the touched set, not `N`.
        w.usize(self.round);
        w.f64(self.elapsed);
        w.f32s(&self.params);
        w.rng(&self.server_rng);
        w.rng(&self.cohort_rng);
        self.population.write_state(&mut w);
        if let Some(fault) = &self.fault {
            fault.write_state(&mut w);
        }
        *buf = w.into_bytes();
    }

    /// Restores state produced by [`Simulation::save_state`] into a
    /// simulation built from the **same** model, dataset, sparsifier, and
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on malformed or truncated bytes,
    /// on an unsupported format version, and on any fingerprint mismatch
    /// (dimension, client count, seed, batch size, sparsifier, wire/fault
    /// presence, cohort size, wire codec). On error the simulation may be
    /// partially overwritten and must be discarded.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = SnapshotReader::new(bytes);
        let version = r.header(SIM_MAGIC, SIM_VERSION)?;
        if version != SIM_VERSION {
            // Version 1 serialized one dense row per client with no cohort
            // stream; the population layout cannot represent its bytes, so
            // the old format is rejected rather than silently misread.
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let checks: [(&'static str, bool); 9] = [
            ("dim", r.usize()? == self.params.len()),
            ("num_clients", r.usize()? == self.source.num_clients()),
            ("seed", r.u64()? == self.config.seed),
            ("batch_size", r.usize()? == self.config.batch_size),
            ("sparsifier", r.str()? == self.sparsifier.name()),
            (
                "wire configuration",
                r.bool()? == self.config.wire.is_some(),
            ),
            ("fault model", r.bool()? == self.fault.is_some()),
            ("cohort size", r.opt_usize()? == self.config.cohort),
            (
                "wire codec",
                r.str()? == self.config.wire.as_ref().map_or("none", |w| w.codec.name()),
            ),
        ];
        for (field, ok) in checks {
            if !ok {
                return Err(CheckpointError::Mismatch { field });
            }
        }
        let round = r.usize()?;
        let elapsed = r.f64()?;
        let params = r.f32s()?;
        if params.len() != self.params.len() {
            return Err(CheckpointError::Invalid("params length"));
        }
        let server_rng = r.rng()?;
        let cohort_rng = r.rng()?;
        let population = ClientPopulation::read_state(
            &mut r,
            self.params.len(),
            self.source.num_clients(),
            |id| self.source.shard_len(id),
        )?;
        if let Some(fault) = &mut self.fault {
            fault.read_state(&mut r)?;
        }
        r.finish()?;
        self.round = round;
        self.elapsed = elapsed;
        self.params = params;
        self.server_rng = server_rng;
        self.cohort_rng = cohort_rng;
        self.population = population;
        Ok(())
    }
}

/// Mirrors a finished round's deterministic facts — cohort size, wire
/// bytes, codec frame counts, fault tallies — into a recorder's counter and
/// gauge streams. Called by [`Simulation::run_round_recorded`] for every
/// round whose recorder is enabled; exposed so callers replaying stored
/// [`RoundReport`]s (the runner's resumed histories, report tooling) can
/// rebuild the same totals.
///
/// Every value recorded here is a pure function of the report, so two
/// bit-identical trajectories produce bit-identical counter streams — the
/// property the byte-identical `metrics.jsonl` contract rests on.
pub fn record_round_report<R: Recorder>(rec: &mut R, report: &RoundReport) {
    rec.counter(CounterId::Rounds, 1);
    rec.counter(CounterId::CohortClients, report.cohort.len() as u64);
    rec.counter(CounterId::DownlinkElements, report.downlink_elements as u64);
    rec.gauge(GaugeId::KUsed, report.k_used as u64);
    if let Some(wire) = &report.wire {
        let uplink: u64 = wire.uplink_bytes.iter().map(|&b| b as u64).sum();
        rec.counter(CounterId::UplinkBytes, uplink);
        rec.counter(CounterId::DownlinkBytes, wire.downlink_bytes as u64);
        rec.counter(CounterId::UplinkFrames, wire.uplink_codecs.len() as u64);
        rec.gauge(GaugeId::MaxUplinkBytes, wire.max_uplink_bytes as u64);
    }
    if let Some(fault) = &report.fault {
        rec.counter(CounterId::FaultOffline, fault.offline as u64);
        rec.counter(CounterId::FaultDropped, fault.dropped as u64);
        rec.counter(CounterId::FaultStragglers, fault.stragglers as u64);
        rec.counter(CounterId::FaultCorruptFrames, fault.corrupt_frames as u64);
        rec.counter(
            CounterId::FaultLost,
            (fault.corrupt_lost + fault.deadline_dropped) as u64,
        );
        rec.counter(CounterId::FaultRetries, fault.retries as u64);
        rec.counter(
            CounterId::FaultRetransmittedBytes,
            fault.retransmitted_bytes,
        );
    }
}

/// Drains the process-wide batched-forward pool (`agsfl_ml::stats`) into
/// the recorder: one [`SpanId::BatchedForward`] sample holding the drained
/// wall time, plus the produced logit rows. A no-op while the kernel-side
/// accounting is disabled (the pool stays empty).
fn drain_batched_forward<R: Recorder>(rec: &mut R) {
    let (calls, rows, nanos) = agsfl_ml::stats::take();
    if calls > 0 {
        rec.span(SpanId::BatchedForward, nanos);
        rec.counter(CounterId::BatchedForwardRows, rows);
    }
}

/// Magic bytes of a serialized [`Simulation`] state blob.
const SIM_MAGIC: [u8; 4] = *b"AGSF";
/// Current simulation state format version: v2 replaced the dense
/// per-client state section with the resident [`ClientPopulation`] rows and
/// added the cohort stream/fingerprint (v1 blobs are rejected); v3 added
/// the wire-codec fingerprint field guarding the lossy uplink tier.
const SIM_VERSION: u32 = 3;
/// XOR tweak deriving the quantization RNG stream's seed from the config
/// seed — its own stream, like the server (`^ 0xABCD_EF01`) and cohort
/// (`^ 0x5EED_C0C0_4071_0001`) streams, so enabling a lossy tier never
/// perturbs any other stream.
const QUANT_STREAM: u64 = 0x051A_771F_ED0C_0DEC;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ClientLink;
    use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
    use agsfl_ml::model::LinearSoftmax;
    use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, UnidirectionalTopK};

    fn tiny_sim_with(
        sparsifier: Box<dyn Sparsifier>,
        beta: f64,
        seed: u64,
        parallelism: Parallelism,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(beta),
                seed,
                parallelism,
                wire: None,
                fault: None,
                cohort: None,
            },
        )
    }

    fn tiny_wire_sim(
        sparsifier: Box<dyn Sparsifier>,
        seed: u64,
        parallelism: Parallelism,
        codec: agsfl_wire::CodecSpec,
        channel: impl Fn(usize) -> ChannelModel,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let channel = channel(fed.num_clients());
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(5.0),
                seed,
                parallelism,
                wire: Some(WireConfig { codec, channel }),
                fault: None,
                cohort: None,
            },
        )
    }

    /// A tiny simulation with an optional fault model, wired (uniform
    /// channel, auto codec) or scalar-priced.
    fn tiny_fault_sim(
        sparsifier: Box<dyn Sparsifier>,
        seed: u64,
        parallelism: Parallelism,
        wired: bool,
        fault: Option<FaultModel>,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let wire = wired.then(|| WireConfig {
            codec: agsfl_wire::CodecSpec::Auto,
            channel: uniform_channel(fed.num_clients()),
        });
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(5.0),
                seed,
                parallelism,
                wire,
                fault,
                cohort: None,
            },
        )
    }

    /// An aggressive every-fault-at-once model for robustness tests.
    fn chaos_model(seed: u64) -> FaultModel {
        FaultModel {
            drop_prob: 0.2,
            crash_prob: 0.1,
            outage_rounds: (1, 2),
            straggle_prob: 0.25,
            straggle_factor: 5.0,
            deadline: Some(40.0),
            corrupt_prob: 0.3,
            max_retries: 2,
            retry_backoff: 0.01,
            seed,
        }
    }

    /// Runs rounds `[from, to)` with a probe on even rounds, collecting the
    /// reports.
    fn drive(sim: &mut Simulation, from: usize, to: usize, k: usize) -> Vec<RoundReport> {
        (from..to)
            .map(|round| {
                let probe = (round % 2 == 0).then(|| (k / 2).max(1));
                sim.run_round(k, probe)
            })
            .collect()
    }

    fn uniform_channel(n: usize) -> ChannelModel {
        ChannelModel::uniform(n, 1.0, 2_000.0, 4_000.0, 0.05)
    }

    fn tiny_sim(sparsifier: Box<dyn Sparsifier>, beta: f64, seed: u64) -> Simulation {
        tiny_sim_with(sparsifier, beta, seed, Parallelism::Auto)
    }

    #[test]
    fn round_advances_time_and_counter() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 0);
        let dim = sim.dim();
        let report = sim.run_round(dim / 10, None);
        assert_eq!(report.round, 1);
        assert_eq!(sim.round(), 1);
        assert!(report.round_time > 1.0);
        assert!((sim.elapsed_time() - report.round_time).abs() < 1e-12);
        assert_eq!(report.contributions.len(), sim.num_clients());
    }

    #[test]
    fn training_reduces_global_loss() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 1);
        let k = sim.dim() / 5;
        let initial = sim.global_train_loss();
        for _ in 0..150 {
            sim.run_round(k, None);
        }
        let trained = sim.global_train_loss();
        assert!(
            trained < initial * 0.8,
            "global loss did not decrease: {initial} -> {trained}"
        );
        assert!(sim.test_accuracy() > 0.2);
    }

    #[test]
    fn send_all_round_costs_full_comm() {
        let mut sim = tiny_sim(Box::new(SendAll::new()), 10.0, 2);
        let report = sim.run_round(1, None);
        assert!((report.round_time - 11.0).abs() < 1e-9);
    }

    #[test]
    fn fab_round_time_matches_sparse_formula() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 3);
        let dim = sim.dim();
        let k = dim / 8;
        let report = sim.run_round(k, None);
        let expected = TimeModel::normalized(10.0).sparse_round_time(dim, k);
        assert!(
            (report.round_time - expected).abs() < 1e-9,
            "round time {} vs expected {expected}",
            report.round_time
        );
    }

    #[test]
    fn probe_report_is_produced_and_sensible() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 4);
        let dim = sim.dim();
        let report = sim.run_round(dim / 4, Some(dim / 8));
        let probe = report.probe.expect("probe requested");
        assert_eq!(probe.probe_k, dim / 8);
        assert!(probe.loss_prev.is_finite() && probe.loss_prev > 0.0);
        assert!(probe.loss_now.is_finite());
        assert!(probe.loss_probe.is_finite());
        assert!(probe.probe_round_time < report.round_time);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let mut a = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        let mut b = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        for _ in 0..5 {
            let ka = a.run_round(50, None);
            let kb = b.run_round(50, None);
            assert_eq!(ka, kb);
        }
        assert_eq!(a.params(), b.params());
    }

    /// The parallel round engine's load-bearing invariant: a serial run and
    /// a multi-threaded run of the same seed produce equal round reports
    /// (probes included) and bit-equal final weights, for every sparsifier
    /// family the engine shards.
    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 40 + which as u64;
            let mut serial = tiny_sim_with(make(), 5.0, seed, Parallelism::Serial);
            let mut parallel = tiny_sim_with(make(), 5.0, seed, Parallelism::Threads(4));
            let k = serial.dim() / 6;
            for round in 0..4 {
                let probe = if round % 2 == 0 { Some(k / 2) } else { None };
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "sparsifier {which}, round {round}");
            }
            assert_eq!(
                serial.params(),
                parallel.params(),
                "final weights diverged for sparsifier {which}"
            );
        }
    }

    /// The fused evaluation sweep must equal the individual accessors bit
    /// for bit, serial or parallel, across 1–8 workers.
    #[test]
    fn fused_evaluation_matches_accessors_for_any_worker_count() {
        for threads in [1usize, 2, 3, 5, 8] {
            let parallelism = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(threads)
            };
            let mut sim = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 21, parallelism);
            for _ in 0..3 {
                sim.run_round(sim.dim() / 6, None);
            }
            let eval = sim.evaluate();
            assert_eq!(
                eval.train_loss as f64,
                sim.global_train_loss(),
                "threads={threads}"
            );
            assert_eq!(
                eval.train_accuracy as f64,
                sim.global_train_accuracy(),
                "threads={threads}"
            );
            assert_eq!(
                eval.test_accuracy as f64,
                sim.test_accuracy(),
                "threads={threads}"
            );
        }
    }

    /// Evaluation sweeps are part of the determinism invariant: the same
    /// trained state evaluates to identical bits for every worker count.
    #[test]
    fn serial_and_parallel_evaluations_are_identical() {
        let mut serial = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Serial);
        let mut parallel =
            tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Threads(4));
        for _ in 0..3 {
            serial.run_round(40, None);
            parallel.run_round(40, None);
        }
        assert_eq!(serial.evaluate(), parallel.evaluate());
        assert_eq!(serial.global_train_loss(), parallel.global_train_loss());
        assert_eq!(serial.test_accuracy(), parallel.test_accuracy());
        assert_eq!(
            serial.global_train_accuracy(),
            parallel.global_train_accuracy()
        );
    }

    /// The byte-priced path must not perturb training by a single bit: the
    /// codecs are lossless and decode + re-rank reproduces every upload, so
    /// a wired and an un-wired run of the same seed walk the identical
    /// trajectory — only the cost signal (round_time, wire report) differs.
    #[test]
    fn wire_path_keeps_training_bit_identical() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 70 + which as u64;
            let mut plain = tiny_sim(make(), 5.0, seed);
            let mut wired = tiny_wire_sim(
                make(),
                seed,
                Parallelism::Auto,
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let k = plain.dim() / 6;
            for round in 0..3 {
                let probe = if round == 1 { Some(k / 2) } else { None };
                let rp = plain.run_round(k, probe);
                let rw = wired.run_round(k, probe);
                assert_eq!(rp.train_loss, rw.train_loss, "sparsifier {which}");
                assert_eq!(rp.contributions, rw.contributions, "sparsifier {which}");
                assert_eq!(rp.downlink_elements, rw.downlink_elements);
                let wire = rw.wire.expect("wire report present");
                assert_eq!(wire.uplink_bytes.len(), wired.num_clients());
                assert!(wire.downlink_bytes > 0);
                assert!(
                    rw.round_time > wired.config().wire.as_ref().unwrap().channel.compute_time()
                );
            }
            assert_eq!(
                plain.params(),
                wired.params(),
                "weights diverged for sparsifier {which}"
            );
        }
    }

    /// Acceptance invariant: byte-priced simulations stay serial-vs-parallel
    /// identical (full round reports, wire accounting included) across
    /// 1–8 workers.
    #[test]
    fn wire_serial_and_parallel_runs_are_identical() {
        for threads in [2usize, 3, 5, 8] {
            let mut serial = tiny_wire_sim(
                Box::new(FabTopK::new()),
                90,
                Parallelism::Serial,
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let mut parallel = tiny_wire_sim(
                Box::new(FabTopK::new()),
                90,
                Parallelism::Threads(threads),
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let k = serial.dim() / 6;
            for round in 0..3 {
                let probe = if round % 2 == 0 { Some(k / 2) } else { None };
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "threads={threads}, round={round}");
            }
            assert_eq!(serial.params(), parallel.params(), "threads={threads}");
        }
    }

    /// A straggler on a heterogeneous channel dominates the round time, and
    /// a bandwidth trace modulates it round by round.
    #[test]
    fn heterogeneous_channel_prices_the_straggler() {
        let mut fast = tiny_wire_sim(
            Box::new(FabTopK::new()),
            91,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| ChannelModel::uniform(n, 1.0, 10_000.0, 10_000.0, 0.0),
        );
        let mut straggler = tiny_wire_sim(
            Box::new(FabTopK::new()),
            91,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| {
                let mut links = vec![ClientLink::new(10_000.0, 10_000.0, 0.0); n];
                links[0] = ClientLink::new(100.0, 10_000.0, 0.0);
                ChannelModel::new(1.0, links)
            },
        );
        let k = fast.dim() / 6;
        let rf = fast.run_round(k, None);
        let rs = straggler.run_round(k, None);
        assert!(
            rs.round_time > rf.round_time * 2.0,
            "straggler {} vs uniform {}",
            rs.round_time,
            rf.round_time
        );
        // Same trajectory regardless of the channel: the channel only
        // prices rounds.
        assert_eq!(rf.train_loss, rs.train_loss);
        assert_eq!(fast.params(), straggler.params());
    }

    #[test]
    fn bandwidth_trace_modulates_round_time() {
        let mut sim = tiny_wire_sim(
            Box::new(FabTopK::new()),
            92,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| {
                ChannelModel::uniform(n, 0.0, 1_000.0, 1_000.0, 0.0)
                    .with_trace(vec![vec![1.0; n], vec![0.25; n]])
            },
        );
        let k = sim.dim() / 8;
        let r0 = sim.run_round(k, None);
        let r1 = sim.run_round(k, None);
        // Round 1 runs at a quarter of the bandwidth: ~4x the comm time.
        assert!(
            r1.round_time > r0.round_time * 3.0,
            "trace did not slow round 1: {} vs {}",
            r1.round_time,
            r0.round_time
        );
    }

    #[test]
    fn periodic_sparsifier_runs() {
        let mut sim = tiny_sim(Box::new(PeriodicK::new()), 10.0, 5);
        let report = sim.run_round(sim.dim() / 10, None);
        assert_eq!(report.downlink_elements, sim.dim() / 10);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 6);
        let _ = sim.run_round(0, None);
    }

    /// A fault model with every rate at zero must not perturb a single bit
    /// of the run — same reports (modulo the attached all-zero fault
    /// accounting), same weights — wired or not.
    #[test]
    fn zero_rate_fault_model_is_bit_identical_to_no_fault() {
        for wired in [false, true] {
            let mut plain = tiny_fault_sim(
                Box::new(FabTopK::new()),
                105,
                Parallelism::Auto,
                wired,
                None,
            );
            let mut faulted = tiny_fault_sim(
                Box::new(FabTopK::new()),
                105,
                Parallelism::Auto,
                wired,
                Some(FaultModel::default()),
            );
            let k = plain.dim() / 6;
            let n = plain.num_clients();
            for round in 0..4 {
                let probe = (round % 2 == 0).then_some(k / 2);
                let rp = plain.run_round(k, probe);
                let rf = faulted.run_round(k, probe);
                assert_eq!(
                    rf.fault.expect("fault accounting attached"),
                    FaultRoundReport {
                        survivors: n,
                        ..FaultRoundReport::default()
                    },
                    "wired={wired}, round={round}"
                );
                let stripped = RoundReport { fault: None, ..rf };
                assert_eq!(rp, stripped, "wired={wired}, round={round}");
            }
            assert_eq!(plain.params(), faulted.params(), "wired={wired}");
        }
    }

    /// Acceptance invariant: no fault configuration aborts a round. Chaos
    /// at high rates — dropouts, crashes, stragglers, corruption with
    /// retries, and a deadline all at once — still yields a completed run
    /// with coherent survivor accounting every round.
    #[test]
    fn faults_never_abort_a_round() {
        let mut sim = tiny_fault_sim(
            Box::new(FabTopK::new()),
            106,
            Parallelism::Auto,
            true,
            Some(chaos_model(7)),
        );
        let n = sim.num_clients();
        let k = sim.dim() / 6;
        let mut lost_any = false;
        for round in 0..8 {
            let probe = (round % 2 == 0).then_some(k / 2);
            let report = sim.run_round(k, probe);
            let fault = report.fault.expect("fault accounting attached");
            assert_eq!(fault.survivors + fault.lost(), n, "round {round}");
            assert_eq!(
                fault.corrupt_frames,
                fault.retries + fault.corrupt_lost,
                "round {round}: every corrupt frame is a retry or part of an exhausted client"
            );
            assert!(report.round_time.is_finite() && report.round_time > 0.0);
            assert_eq!(report.contributions.len(), n);
            lost_any |= fault.lost() > 0;
        }
        assert!(lost_any, "chaos rates should lose at least one upload");
    }

    /// Even a total blackout (every upload lost, zero survivors) completes
    /// rounds gracefully: empty aggregate, zero contributions, no panic.
    #[test]
    fn total_blackout_still_completes_rounds() {
        let model = FaultModel {
            drop_prob: 1.0,
            seed: 1,
            ..FaultModel::default()
        };
        let mut sim = tiny_fault_sim(
            Box::new(FabTopK::new()),
            107,
            Parallelism::Auto,
            true,
            Some(model),
        );
        let before = sim.params().to_vec();
        for _ in 0..3 {
            let report = sim.run_round(sim.dim() / 6, None);
            let fault = report.fault.expect("fault accounting attached");
            assert_eq!(fault.survivors, 0);
            assert_eq!(fault.dropped, sim.num_clients());
            assert!(report.contributions.iter().all(|&c| c == 0));
        }
        // Nothing was aggregated, so the weights never moved; the updates
        // wait in the residual accumulators.
        assert_eq!(sim.params(), &before[..]);
    }

    /// Fault injection preserves the serial-vs-parallel identity: the plan,
    /// drawn serially before the parallel client pass, decides every fault.
    #[test]
    fn faulty_serial_and_parallel_runs_are_identical() {
        for threads in [2usize, 4, 8] {
            let mut serial = tiny_fault_sim(
                Box::new(FabTopK::new()),
                108,
                Parallelism::Serial,
                true,
                Some(chaos_model(9)),
            );
            let mut parallel = tiny_fault_sim(
                Box::new(FabTopK::new()),
                108,
                Parallelism::Threads(threads),
                true,
                Some(chaos_model(9)),
            );
            let k = serial.dim() / 6;
            for round in 0..5 {
                let probe = (round % 2 == 0).then_some(k / 2);
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "threads={threads}, round={round}");
            }
            assert_eq!(serial.params(), parallel.params(), "threads={threads}");
        }
    }

    /// A deadline drops the client whose uplink cannot finish in time, caps
    /// the uplink phase at the deadline, and leaves the fast clients'
    /// aggregation intact.
    #[test]
    fn deadline_drops_slow_clients_and_caps_the_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(160);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let n = fed.num_clients();
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let mut links = vec![ClientLink::new(10_000.0, 10_000.0, 0.0); n];
        links[0] = ClientLink::new(10.0, 10_000.0, 0.0); // crawling uplink
        let mut sim = Simulation::new(
            Box::new(model),
            fed,
            Box::new(FabTopK::new()),
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(5.0),
                seed: 160,
                parallelism: Parallelism::Auto,
                wire: Some(WireConfig {
                    codec: agsfl_wire::CodecSpec::Auto,
                    channel: ChannelModel::new(1.0, links),
                }),
                fault: Some(FaultModel {
                    deadline: Some(5.0),
                    seed: 2,
                    ..FaultModel::default()
                }),
                cohort: None,
            },
        );
        let report = sim.run_round(sim.dim() / 6, None);
        let fault = report.fault.expect("fault accounting attached");
        assert_eq!(fault.deadline_dropped, 1);
        assert_eq!(fault.survivors, n - 1);
        assert_eq!(report.contributions[0], 0);
        // compute (1.0) + deadline (5.0) + a fast broadcast.
        assert!(
            report.round_time > 6.0 && report.round_time < 7.0,
            "phase not capped at the deadline: {}",
            report.round_time
        );
    }

    /// Stragglers slow the round they straggle in but never touch the
    /// training trajectory — the slowdown only scales link timing.
    #[test]
    fn stragglers_slow_the_round_but_not_training() {
        let mut clean = tiny_fault_sim(
            Box::new(FabTopK::new()),
            161,
            Parallelism::Auto,
            true,
            Some(FaultModel {
                seed: 3,
                ..FaultModel::default()
            }),
        );
        let mut straggly = tiny_fault_sim(
            Box::new(FabTopK::new()),
            161,
            Parallelism::Auto,
            true,
            Some(FaultModel {
                straggle_prob: 1.0,
                straggle_factor: 10.0,
                seed: 3,
                ..FaultModel::default()
            }),
        );
        let k = clean.dim() / 6;
        let n = clean.num_clients();
        for _ in 0..3 {
            let rc = clean.run_round(k, None);
            let rs = straggly.run_round(k, None);
            assert!(rs.round_time > rc.round_time);
            assert_eq!(rc.train_loss, rs.train_loss);
            assert_eq!(rs.fault.unwrap().stragglers, n);
        }
        assert_eq!(clean.params(), straggly.params());
    }

    /// Satellite 4, full grid: interrupt at the first round, mid-run, and
    /// last-but-one; resume from the saved bytes; the stitched run must be
    /// bit-identical to the uninterrupted one — for every sparsifier,
    /// serial and parallel, with chaos-level faults active.
    #[test]
    fn resume_is_bit_identical_for_every_sparsifier_and_interrupt() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 120 + which as u64;
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                let fault = Some(chaos_model(seed));
                let mut reference = tiny_fault_sim(make(), seed, parallelism, true, fault.clone());
                let k = reference.dim() / 6;
                let full = drive(&mut reference, 0, 6, k);
                for interrupt in [1usize, 3, 5] {
                    let mut first = tiny_fault_sim(make(), seed, parallelism, true, fault.clone());
                    let before = drive(&mut first, 0, interrupt, k);
                    let bytes = first.save_state();
                    let mut resumed =
                        tiny_fault_sim(make(), seed, parallelism, true, fault.clone());
                    resumed.restore_state(&bytes).unwrap();
                    assert_eq!(resumed.round(), interrupt);
                    let after = drive(&mut resumed, interrupt, 6, k);
                    let stitched: Vec<RoundReport> = before.into_iter().chain(after).collect();
                    assert_eq!(
                        full, stitched,
                        "sparsifier {which}, parallelism {parallelism:?}, interrupt {interrupt}"
                    );
                    assert_eq!(
                        reference.params(),
                        resumed.params(),
                        "sparsifier {which}, interrupt {interrupt}"
                    );
                }
            }
        }
    }

    /// Resume composes with the thread-count invariant: an interrupted run
    /// resumed under any worker count reproduces the serial uninterrupted
    /// run bit for bit.
    #[test]
    fn resume_matches_across_worker_counts() {
        let fault = Some(chaos_model(11));
        let mut reference = tiny_fault_sim(
            Box::new(FabTopK::new()),
            140,
            Parallelism::Serial,
            true,
            fault.clone(),
        );
        let k = reference.dim() / 6;
        let full = drive(&mut reference, 0, 6, k);
        for threads in [1usize, 2, 3, 5, 8] {
            let parallelism = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(threads)
            };
            let mut first = tiny_fault_sim(
                Box::new(FabTopK::new()),
                140,
                parallelism,
                true,
                fault.clone(),
            );
            let before = drive(&mut first, 0, 3, k);
            let bytes = first.save_state();
            let mut resumed = tiny_fault_sim(
                Box::new(FabTopK::new()),
                140,
                parallelism,
                true,
                fault.clone(),
            );
            resumed.restore_state(&bytes).unwrap();
            let after = drive(&mut resumed, 3, 6, k);
            let stitched: Vec<RoundReport> = before.into_iter().chain(after).collect();
            assert_eq!(full, stitched, "threads={threads}");
            assert_eq!(reference.params(), resumed.params(), "threads={threads}");
        }
    }

    /// Save/resume also holds on the plain scalar-priced path with no fault
    /// model at all — checkpointing is independent of both subsystems.
    #[test]
    fn resume_without_wire_or_faults_is_bit_identical() {
        let mut reference = tiny_sim(Box::new(FabTopK::new()), 5.0, 145);
        let k = reference.dim() / 6;
        let full = drive(&mut reference, 0, 6, k);
        let mut first = tiny_sim(Box::new(FabTopK::new()), 5.0, 145);
        let before = drive(&mut first, 0, 3, k);
        let bytes = first.save_state();
        let mut resumed = tiny_sim(Box::new(FabTopK::new()), 5.0, 145);
        resumed.restore_state(&bytes).unwrap();
        let after = drive(&mut resumed, 3, 6, k);
        let stitched: Vec<RoundReport> = before.into_iter().chain(after).collect();
        assert_eq!(full, stitched);
        assert_eq!(reference.params(), resumed.params());
    }

    /// Restore validates its input: fingerprint mismatches and truncations
    /// yield typed errors, never panics.
    #[test]
    fn restore_rejects_mismatched_or_corrupt_state() {
        let fault = Some(FaultModel::default());
        let mut sim = tiny_fault_sim(
            Box::new(FabTopK::new()),
            150,
            Parallelism::Auto,
            true,
            fault.clone(),
        );
        let k = sim.dim() / 6;
        drive(&mut sim, 0, 2, k);
        let bytes = sim.save_state();

        let mut other_seed = tiny_fault_sim(
            Box::new(FabTopK::new()),
            151,
            Parallelism::Auto,
            true,
            fault.clone(),
        );
        assert!(matches!(
            other_seed.restore_state(&bytes),
            Err(CheckpointError::Mismatch { field: "seed" })
        ));
        let mut no_fault =
            tiny_fault_sim(Box::new(FabTopK::new()), 150, Parallelism::Auto, true, None);
        assert!(matches!(
            no_fault.restore_state(&bytes),
            Err(CheckpointError::Mismatch {
                field: "fault model"
            })
        ));
        let mut other_sparsifier = tiny_fault_sim(
            Box::new(FubTopK::new()),
            150,
            Parallelism::Auto,
            true,
            fault.clone(),
        );
        assert!(matches!(
            other_sparsifier.restore_state(&bytes),
            Err(CheckpointError::Mismatch {
                field: "sparsifier"
            })
        ));

        for cut in [0, 3, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            let mut target = tiny_fault_sim(
                Box::new(FabTopK::new()),
                150,
                Parallelism::Auto,
                true,
                fault.clone(),
            );
            assert!(
                target.restore_state(&bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        let mut target = tiny_fault_sim(
            Box::new(FabTopK::new()),
            150,
            Parallelism::Auto,
            true,
            fault,
        );
        assert_eq!(
            target.restore_state(&extended),
            Err(CheckpointError::TrailingBytes)
        );
    }

    /// Misconfigured fault models are rejected before the run starts.
    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_fault_config_panics_at_construction() {
        let _ = tiny_fault_sim(
            Box::new(FabTopK::new()),
            155,
            Parallelism::Auto,
            false,
            Some(FaultModel {
                corrupt_prob: 0.5, // requires a wire configuration
                ..FaultModel::default()
            }),
        );
    }

    /// A tiny FAB-top-k simulation with cohort sampling enabled.
    fn tiny_cohort_sim(seed: u64, cohort: usize, parallelism: Parallelism) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        Simulation::new(
            Box::new(model),
            fed,
            Box::new(FabTopK::new()),
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(5.0),
                seed,
                parallelism,
                wire: None,
                fault: None,
                cohort: Some(cohort),
            },
        )
    }

    /// Partial participation basics: reports carry the sampled members in
    /// ascending order, contributions stay parallel to the cohort, every
    /// client is eventually drawn, and the persistent population grows only
    /// with touched clients.
    #[test]
    fn sampled_cohorts_report_members_and_grow_population_lazily() {
        let mut sim = tiny_cohort_sim(21, 3, Parallelism::Serial);
        let n = sim.num_clients();
        assert!(n > 3, "tiny dataset must be larger than the cohort");
        assert_eq!(sim.cohort_size(), 3);
        assert_eq!(sim.resident_clients(), 0);
        let mut seen = vec![false; n];
        for _ in 0..40 {
            let report = sim.run_round(8, None);
            assert_eq!(report.cohort.len(), 3);
            assert_eq!(report.contributions.len(), 3);
            assert!(report.cohort.windows(2).all(|w| w[0] < w[1]));
            assert!(report.cohort.iter().all(|&id| id < n));
            for &id in &report.cohort {
                seen[id] = true;
            }
            let touched = seen.iter().filter(|&&s| s).count();
            assert_eq!(sim.resident_clients(), touched);
        }
        assert!(seen.iter().all(|&s| s), "sampler starves some clients");
    }

    /// Cohort-sampled rounds are bit-identical for every worker count,
    /// probes included — parallelism stays a pure wall-clock knob under
    /// partial participation.
    #[test]
    fn sampled_cohort_runs_are_identical_across_worker_counts() {
        let mut serial = tiny_cohort_sim(27, 3, Parallelism::Serial);
        let mut runs: Vec<Simulation> = [2, 4, 8]
            .iter()
            .map(|&t| tiny_cohort_sim(27, 3, Parallelism::Threads(t)))
            .collect();
        for round in 0..6 {
            let probe = (round % 2 == 0).then_some(4);
            let reference = serial.run_round(8, probe);
            for sim in &mut runs {
                assert_eq!(sim.run_round(8, probe), reference, "round {round}");
            }
        }
        for sim in &runs {
            assert_eq!(sim.params(), serial.params());
        }
    }

    /// Wired, fault-injected cohort rounds keep the same determinism
    /// contract: byte pricing, retries, and outages are all decided by the
    /// serially drawn plan, never the worker schedule.
    #[test]
    fn wired_fault_cohort_runs_are_identical_across_worker_counts() {
        let build = |parallelism| {
            let mut rng = ChaCha8Rng::seed_from_u64(29);
            let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
            let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
            let channel = uniform_channel(fed.num_clients());
            Simulation::new(
                Box::new(model),
                fed,
                Box::new(FubTopK::new()),
                SimulationConfig {
                    learning_rate: 0.05,
                    batch_size: 8,
                    time_model: TimeModel::normalized(5.0),
                    seed: 29,
                    parallelism,
                    wire: Some(WireConfig {
                        codec: agsfl_wire::CodecSpec::Auto,
                        channel,
                    }),
                    fault: Some(chaos_model(29)),
                    cohort: Some(3),
                },
            )
        };
        let mut serial = build(Parallelism::Serial);
        let mut parallel = build(Parallelism::Threads(4));
        for round in 0..8 {
            let rs = serial.run_round(8, None);
            let rp = parallel.run_round(8, None);
            assert_eq!(rs, rp, "round {round}");
        }
        assert_eq!(serial.params(), parallel.params());
    }

    /// Checkpoint/resume under cohort sampling is bit-identical to the
    /// uninterrupted run at every interrupt point — the snapshot carries
    /// the cohort stream and exactly the resident population rows.
    #[test]
    fn sampled_cohort_resume_is_bit_identical() {
        let mut reference = tiny_cohort_sim(33, 3, Parallelism::Auto);
        let mut reports = Vec::new();
        for round in 0..8 {
            let probe = (round % 2 == 0).then_some(4);
            reports.push(reference.run_round(8, probe));
        }
        for interrupt in [0usize, 1, 3, 7] {
            let mut sim = tiny_cohort_sim(33, 3, Parallelism::Auto);
            for round in 0..interrupt {
                let probe = (round % 2 == 0).then_some(4);
                sim.run_round(8, probe);
            }
            let bytes = sim.save_state();
            let mut resumed = tiny_cohort_sim(33, 3, Parallelism::Serial);
            resumed.restore_state(&bytes).unwrap();
            for (round, report) in reports.iter().enumerate().skip(interrupt) {
                let probe = (round % 2 == 0).then_some(4);
                assert_eq!(
                    &resumed.run_round(8, probe),
                    report,
                    "interrupt {interrupt}, round {round}"
                );
            }
            assert_eq!(
                resumed.params(),
                reference.params(),
                "interrupt {interrupt}"
            );
        }
    }

    /// The v2 format explicitly rejects v1 blobs (the dense per-client
    /// layout cannot be reinterpreted as population rows) and a snapshot
    /// from a different cohort size fails the fingerprint.
    #[test]
    fn restore_rejects_v1_blobs_and_cohort_mismatch() {
        let mut w = SnapshotWriter::new();
        w.header(SIM_MAGIC, 1);
        let v1 = w.into_bytes();
        let mut target = tiny_cohort_sim(40, 3, Parallelism::Serial);
        assert_eq!(
            target.restore_state(&v1),
            Err(CheckpointError::UnsupportedVersion(1))
        );

        let mut donor = tiny_cohort_sim(41, 3, Parallelism::Serial);
        donor.run_round(8, None);
        let bytes = donor.save_state();
        let mut other = tiny_cohort_sim(41, 4, Parallelism::Serial);
        assert_eq!(
            other.restore_state(&bytes),
            Err(CheckpointError::Mismatch {
                field: "cohort size"
            })
        );
    }

    /// A lazy [`ShardSource`] behind `with_source` is indistinguishable
    /// from an eager dataset holding the same bytes: identical round
    /// reports, identical weights, and the streamed evaluation sweeps are
    /// bit-identical to the eager parallel ones.
    #[test]
    fn lazy_source_matches_eager_dataset_with_same_shards() {
        use agsfl_ml::data::LazySyntheticFemnist;

        let cfg = SyntheticFemnistConfig::tiny();
        let src = LazySyntheticFemnist::new(cfg, 5);
        let n = ShardSource::num_clients(&src);
        let mut shards = Vec::new();
        for i in 0..n {
            let mut shard = ClientShard::empty(cfg.feature_dim);
            src.materialize_into(i, &mut shard);
            shards.push(shard);
        }
        let fed = FederatedDataset::new(shards, src.test().clone(), cfg.num_classes);
        let config = SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(5.0),
            seed: 5,
            parallelism: Parallelism::Auto,
            wire: None,
            fault: None,
            cohort: Some(4),
        };
        let mut lazy = Simulation::with_source(
            Box::new(LinearSoftmax::new(cfg.feature_dim, cfg.num_classes)),
            Box::new(src),
            Box::new(FabTopK::new()),
            config.clone(),
        );
        let mut eager = Simulation::new(
            Box::new(LinearSoftmax::new(cfg.feature_dim, cfg.num_classes)),
            fed,
            Box::new(FabTopK::new()),
            config,
        );
        for round in 0..5 {
            let probe = (round % 2 == 0).then_some(4);
            assert_eq!(
                lazy.run_round(8, probe),
                eager.run_round(8, probe),
                "round {round}"
            );
        }
        assert_eq!(lazy.params(), eager.params());
        assert_eq!(
            lazy.global_train_loss().to_bits(),
            eager.global_train_loss().to_bits()
        );
        assert_eq!(
            lazy.global_train_accuracy().to_bits(),
            eager.global_train_accuracy().to_bits()
        );
        assert_eq!(
            lazy.test_accuracy().to_bits(),
            eager.test_accuracy().to_bits()
        );
        let (le, ee) = (lazy.evaluate(), eager.evaluate());
        assert_eq!(le.train_loss.to_bits(), ee.train_loss.to_bits());
        assert_eq!(le.train_accuracy.to_bits(), ee.train_accuracy.to_bits());
        assert_eq!(le.test_accuracy.to_bits(), ee.test_accuracy.to_bits());
    }
}
