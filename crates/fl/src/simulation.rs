//! The synchronized sparse-gradient FL simulation (Algorithm 1).

use agsfl_exec::{Executor, Parallelism};
use agsfl_ml::data::FederatedDataset;
use agsfl_ml::metrics::{
    accuracy_parallel, global_accuracy_parallel, global_evaluation, global_loss_parallel,
    GlobalEvaluation,
};
use agsfl_ml::model::Model;
use agsfl_sparse::{topk, ClientUpload, SelectionResult, ShardedScratch, Sparsifier, UploadPlan};
use agsfl_wire::{decode_frame, decode_gradient, frame_codec, Codec, WireScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelModel;
use crate::client::Client;
use crate::round::{ProbeReport, RoundReport, WireRoundReport};
use crate::time::TimeModel;

/// Byte-priced exchange configuration: which wire codec carries the
/// messages and what channel each client sits behind.
///
/// When [`SimulationConfig::wire`] is set, every round actually encodes the
/// uplink/downlink messages (`agsfl_wire`), the server decodes them before
/// aggregation, and the reported `round_time` is the [`ChannelModel`] price
/// of the emitted frames instead of the scalar-proxy
/// [`TimeModel`](crate::TimeModel) time. Because the codecs are lossless
/// and the rank order of top-k uploads is a total order of the values, the
/// training trajectory is bit-identical to the un-wired run — only the cost
/// signal the controllers see changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireConfig {
    /// The wire codec (use [`agsfl_wire::CodecSpec::Auto`] for per-message
    /// size-optimal encoding).
    pub codec: agsfl_wire::CodecSpec,
    /// Per-client channel conditions.
    pub channel: ChannelModel,
}

/// Static configuration of a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// SGD step size `η`. The paper uses 0.01.
    pub learning_rate: f32,
    /// Mini-batch size per client per round. The paper uses 32.
    pub batch_size: usize,
    /// Normalized time model (the paper's "scalars transmitted" proxy).
    pub time_model: TimeModel,
    /// Master seed; client RNGs and the server RNG are derived from it.
    pub seed: u64,
    /// Worker-thread policy for the round engine (client pass, server
    /// selection, probe evaluation). Results are bit-identical for every
    /// setting — parallelism only changes wall-clock time.
    pub parallelism: Parallelism,
    /// Optional byte-priced exchange: encode messages through a wire codec
    /// and price rounds on a per-client [`ChannelModel`] instead of the
    /// scalar proxy.
    pub wire: Option<WireConfig>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            batch_size: 32,
            time_model: TimeModel::default(),
            seed: 0,
            parallelism: Parallelism::Auto,
            wire: None,
        }
    }
}

/// Runtime state of the byte-priced exchange path: the built codec, the
/// channel, and the server-side encode workspace (downlink frames and
/// hypothetical-`k'` probe pricing reuse it across rounds).
struct WireState {
    codec: Box<dyn Codec>,
    channel: ChannelModel,
    scratch: WireScratch,
}

impl WireState {
    /// The channel-priced time a round with sparsity `k'` would have taken:
    /// each client's hypothetical uplink is the `k'`-element prefix of the
    /// message it actually built this round (for top-k plans the prefix is
    /// exactly its top-`k'` message), priced at its exact encoded length;
    /// the downlink is the probe selection's aggregate.
    fn probe_round_time(
        &mut self,
        round_idx: usize,
        dim: usize,
        probe_k: usize,
        uploads: &[ClientUpload],
        probe_selection: &SelectionResult,
    ) -> f64 {
        let uplink_bytes: Vec<usize> = uploads
            .iter()
            .map(|upload| {
                let prefix = &upload.entries[..probe_k.min(upload.entries.len())];
                self.scratch
                    .encoded_len_unsorted(self.codec.as_ref(), dim, prefix)
            })
            .collect();
        let downlink_bytes = self.codec.encoded_len_gradient(&probe_selection.aggregated);
        self.channel
            .round_time(round_idx, &uplink_bytes, downlink_bytes)
    }
}

/// A synchronized federated-learning run using sparse gradient aggregation.
///
/// The simulation owns the model architecture, the federated dataset, the
/// per-client state (mini-batch samplers and residual accumulators) and a
/// single global weight vector. Keeping one weight vector is sound because
/// every client applies exactly the same downlink update (the paper's
/// synchronization argument for Algorithm 1); an integration test in
/// `tests/` additionally verifies this by replaying updates on independent
/// per-client copies.
pub struct Simulation {
    model: Box<dyn Model>,
    dataset: FederatedDataset,
    sparsifier: Box<dyn Sparsifier>,
    config: SimulationConfig,
    clients: Vec<Client>,
    params: Vec<f32>,
    server_rng: ChaCha8Rng,
    /// Reusable (sharded) server-side selection workspace; buffers are
    /// sized on the first round and reused (including by the probe's second
    /// selection), keeping the per-round server path allocation-free in
    /// steady state on the serial path.
    scratch: ShardedScratch,
    /// The round engine's executor, built once from the configured
    /// [`Parallelism`] and reused by every parallel region.
    executor: Executor,
    /// Byte-priced exchange state, present when the config carries a
    /// [`WireConfig`].
    wire: Option<WireState>,
    round: usize,
    elapsed: f64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("sparsifier", &self.sparsifier.name())
            .field("num_clients", &self.clients.len())
            .field("dim", &self.params.len())
            .field("round", &self.round)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation: initializes the global weights and one client per
    /// dataset shard.
    pub fn new(
        model: Box<dyn Model>,
        dataset: FederatedDataset,
        sparsifier: Box<dyn Sparsifier>,
        config: SimulationConfig,
    ) -> Self {
        assert_eq!(
            model.input_dim(),
            dataset.feature_dim(),
            "model input dimension {} does not match dataset feature dimension {}",
            model.input_dim(),
            dataset.feature_dim()
        );
        assert!(
            model.num_classes() >= dataset.num_classes(),
            "model has fewer classes than the dataset"
        );
        let mut init_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let params = model.init_params(&mut init_rng);
        let dim = params.len();
        let total_samples = dataset.total_samples() as f64;
        let clients = dataset
            .clients()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                Client::new(
                    i,
                    shard.clone(),
                    shard.len() as f64 / total_samples,
                    dim,
                    config.batch_size,
                    config
                        .seed
                        .wrapping_add(1)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(i as u64),
                )
            })
            .collect();
        let wire = config.wire.as_ref().map(|w| {
            assert_eq!(
                w.channel.num_clients(),
                dataset.num_clients(),
                "channel model covers {} clients but the dataset has {}",
                w.channel.num_clients(),
                dataset.num_clients()
            );
            WireState {
                codec: w.codec.build(),
                channel: w.channel.clone(),
                scratch: WireScratch::new(),
            }
        });
        let executor = config.parallelism.build();
        let server_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xABCD_EF01);
        Self {
            model,
            dataset,
            sparsifier,
            config,
            clients,
            params,
            server_rng,
            scratch: ShardedScratch::new(),
            executor,
            wire,
            round: 0,
            elapsed: 0.0,
        }
    }

    /// Model dimension `D`.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative normalized time consumed so far.
    pub fn elapsed_time(&self) -> f64 {
        self.elapsed
    }

    /// The current global weight vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The model architecture.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The sparsifier driving this run.
    pub fn sparsifier(&self) -> &dyn Sparsifier {
        self.sparsifier.as_ref()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The federated dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// Global training loss `L(w)` over all client data at the current
    /// weights, swept client-parallel through the round engine's executor
    /// (bit-identical to the serial sweep; see `agsfl_ml::metrics`).
    pub fn global_train_loss(&self) -> f64 {
        global_loss_parallel(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Test-set accuracy at the current weights (row-chunked parallel sweep,
    /// bit-identical to the serial pass).
    pub fn test_accuracy(&self) -> f64 {
        let test = self.dataset.test();
        accuracy_parallel(
            self.model.as_ref(),
            &self.params,
            &test.features,
            &test.labels,
            &self.executor,
        ) as f64
    }

    /// Weighted training accuracy over all client data at the current
    /// weights (client-parallel sweep, bit-identical to the serial pass).
    pub fn global_train_accuracy(&self) -> f64 {
        global_accuracy_parallel(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Everything an evaluation point reports — global train loss, global
    /// train accuracy and test accuracy — from **one** fused parallel sweep
    /// over one work list, so an `eval_every` point spawns a single worker
    /// region and forwards every client shard exactly once (the individual
    /// accessors forward the shards once per metric).
    ///
    /// Each metric is bit-identical to its individual accessor.
    pub fn evaluate(&self) -> GlobalEvaluation {
        global_evaluation(
            self.model.as_ref(),
            &self.params,
            self.dataset.clients(),
            self.dataset.test(),
            &self.executor,
        )
    }

    /// Runs one round of Algorithm 1 with `k`-element sparsification.
    ///
    /// If `probe_k` is given, the round additionally evaluates the
    /// hypothetical `probe_k`-element update needed by the derivative-sign
    /// estimator (Section IV-E) and attaches a [`ProbeReport`]; following the
    /// paper, the probe's extra single-sample loss computations and the small
    /// difference message are not charged to the round time.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn run_round(&mut self, k: usize, probe_k: Option<usize>) -> RoundReport {
        assert!(k > 0, "k must be at least 1");
        let k = k.min(self.dim());
        self.round += 1;
        let dim = self.dim();
        let lr = self.config.learning_rate;

        // (1) One fused parallel pass per client: local gradient computation
        // (Line 4) immediately followed by building the uplink message
        // (Line 6), so each client's residual is still hot in cache when its
        // top-k runs and the round spawns one worker region instead of a
        // parallel gradient pass plus a serial upload loop. Each client owns
        // its RNG and sampler, and the executor returns results in client
        // order, so this is bit-identical to the sequential loop. On the
        // byte-priced path each client additionally encodes its message
        // into a wire frame (against its own reused scratch) in the same
        // pass.
        let plan = self.sparsifier.upload_plan(dim, k, &mut self.server_rng);
        let model = self.model.as_ref();
        let params = &self.params;
        let wire_codec: Option<&dyn Codec> = self.wire.as_ref().map(|w| w.codec.as_ref());
        let produced: Vec<(f64, f32, ClientUpload, Option<Vec<u8>>)> =
            self.executor.map_mut(&mut self.clients, |client| {
                let loss = client.compute_local_gradient(model, params);
                let upload = client.build_upload(&plan, k);
                let frame = wire_codec.map(|codec| client.encode_upload(codec, dim, &upload));
                (client.weight(), loss, upload, frame)
            });
        let mut train_loss = 0.0f64;
        let mut uploads = Vec::with_capacity(produced.len());
        let mut frames = Vec::new();
        for (weight, loss, upload, frame) in produced {
            train_loss += weight * loss as f64;
            uploads.push(upload);
            if let Some(frame) = frame {
                frames.push(frame);
            }
        }

        // (1b) Byte-priced path: the server decodes every frame before
        // aggregation — the decoded messages *replace* the locally built
        // ones, so selection genuinely runs on what crossed the wire. The
        // codecs are lossless and the top-k rank order is a total order of
        // the values (`topk::compare_magnitude_then_index`), so re-ranking
        // the decoded entries reproduces the uploads bit for bit; the
        // debug assertion pins that every test run.
        if wire_codec.is_some() {
            let rerank = matches!(plan, UploadPlan::TopKOwn);
            let to_decode: Vec<(usize, f64, &[u8])> = uploads
                .iter()
                .zip(frames.iter())
                .map(|(u, f)| (u.client, u.weight, f.as_slice()))
                .collect();
            let decoded: Vec<ClientUpload> =
                self.executor
                    .map_ref(&to_decode, |&(client, weight, frame)| {
                        let mut entries = Vec::new();
                        let (frame_dim, _) = decode_frame(frame, &mut entries)
                            .expect("self-encoded frame must decode");
                        debug_assert_eq!(frame_dim, dim);
                        if rerank {
                            topk::rank_by_magnitude(&mut entries);
                        }
                        ClientUpload::new(client, weight, entries)
                    });
            debug_assert!(
                decoded.iter().zip(uploads.iter()).all(|(d, u)| {
                    d.entries.len() == u.entries.len()
                        && d.entries
                            .iter()
                            .zip(u.entries.iter())
                            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
                }),
                "decoded uploads must be bit-identical to the built ones"
            );
            uploads = decoded;
        }

        // (2) Server selection and aggregation, sharded across the
        // executor's workers and reusing the round workspace.
        let selection =
            self.sparsifier
                .select_parallel(&uploads, dim, k, &mut self.scratch, &self.executor);

        // Optional probe for the derivative-sign estimator; its second
        // selection shares the same workspace. On the byte-priced path the
        // hypothetical `θ_m(k')` is re-priced through the channel model.
        let round_idx = self.round - 1;
        let probe = probe_k.map(|pk| {
            let pk = pk.clamp(1, dim);
            let probe_selection = self.sparsifier.select_parallel(
                &uploads,
                dim,
                pk,
                &mut self.scratch,
                &self.executor,
            );
            let mut report = self.build_probe_report(pk, &selection, &probe_selection);
            if let Some(wire) = &mut self.wire {
                report.probe_round_time =
                    wire.probe_round_time(round_idx, dim, pk, &uploads, &probe_selection);
            }
            report
        });

        // (3) Downlink: every client applies the identical sparse update.
        // On the byte-priced path the broadcast is encoded, priced, and
        // *decoded* before application — the weights advance by what
        // crossed the wire (bit-identical to the local aggregate because
        // the codecs are lossless; debug-asserted below).
        let (round_time, wire_report) = match &mut self.wire {
            None => {
                selection.aggregated.apply_sgd(&mut self.params, lr);
                let round_time = self.config.time_model.round_time(
                    dim,
                    selection.max_uplink_scalars(),
                    selection.downlink_scalars(),
                );
                (round_time, None)
            }
            Some(wire) => {
                let frame = wire
                    .codec
                    .encode_gradient_into(&selection.aggregated, &mut wire.scratch);
                let downlink_bytes = frame.len();
                let downlink_codec = frame_codec(frame).expect("freshly encoded frame");
                let broadcast = decode_gradient(frame).expect("self-encoded frame must decode");
                debug_assert!(
                    broadcast
                        .entries()
                        .iter()
                        .zip(selection.aggregated.entries().iter())
                        .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
                        && broadcast.nnz() == selection.aggregated.nnz(),
                    "decoded broadcast must be bit-identical to the aggregate"
                );
                broadcast.apply_sgd(&mut self.params, lr);
                let uplink_bytes: Vec<usize> = frames.iter().map(Vec::len).collect();
                let uplink_codecs = frames
                    .iter()
                    .map(|f| frame_codec(f).expect("freshly encoded frame"))
                    .collect();
                let round_time = wire
                    .channel
                    .round_time(round_idx, &uplink_bytes, downlink_bytes);
                let max_uplink_bytes = uplink_bytes.iter().copied().max().unwrap_or(0);
                let report = WireRoundReport {
                    uplink_bytes,
                    max_uplink_bytes,
                    downlink_bytes,
                    uplink_codecs,
                    downlink_codec,
                };
                (round_time, Some(report))
            }
        };
        for (client, resets) in self.clients.iter_mut().zip(selection.reset_indices.iter()) {
            client.apply_reset(resets);
        }
        self.elapsed += round_time;

        RoundReport {
            round: self.round,
            k_used: k,
            train_loss,
            round_time,
            elapsed_time: self.elapsed,
            downlink_elements: selection.downlink_elements,
            max_uplink_scalars: selection.max_uplink_scalars(),
            contributions: selection.into_contributions(),
            probe,
            wire: wire_report,
        }
    }

    /// Evaluates the probe losses `L̃(w(m-1))`, `L̃(w(m))`, `L̃(w'(m))` of the
    /// derivative-sign estimator.
    fn build_probe_report(
        &self,
        probe_k: usize,
        selection: &SelectionResult,
        probe_selection: &SelectionResult,
    ) -> ProbeReport {
        let lr = self.config.learning_rate;
        let model = self.model.as_ref();

        let mut w_now = self.params.clone();
        selection.aggregated.apply_sgd(&mut w_now, lr);
        let mut w_probe = self.params.clone();
        probe_selection.aggregated.apply_sgd(&mut w_probe, lr);

        // One pass per client: the probe sample is fetched once and the
        // three weight vectors evaluated together (historically three
        // independent `probe_loss` calls per client). The per-client
        // results come back in client order, so the serial reduction below
        // accumulates exactly as a sequential loop would.
        let losses: Vec<Option<[f32; 3]>> = self.executor.map_ref(&self.clients, |client| {
            client.probe_losses(model, [&self.params, &w_now, &w_probe])
        });
        let mut prev_sum = 0.0f64;
        let mut now_sum = 0.0f64;
        let mut probe_sum = 0.0f64;
        let mut count = 0usize;
        for loss in losses {
            let Some([prev, now, probe]) = loss else {
                continue;
            };
            prev_sum += prev as f64;
            now_sum += now as f64;
            probe_sum += probe as f64;
            count += 1;
        }
        let n = count.max(1) as f64;
        ProbeReport {
            probe_k,
            loss_prev: prev_sum / n,
            loss_now: now_sum / n,
            loss_probe: probe_sum / n,
            probe_round_time: self
                .config
                .time_model
                .sparse_round_time(self.dim(), probe_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ClientLink;
    use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
    use agsfl_ml::model::LinearSoftmax;
    use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, UnidirectionalTopK};

    fn tiny_sim_with(
        sparsifier: Box<dyn Sparsifier>,
        beta: f64,
        seed: u64,
        parallelism: Parallelism,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(beta),
                seed,
                parallelism,
                wire: None,
            },
        )
    }

    fn tiny_wire_sim(
        sparsifier: Box<dyn Sparsifier>,
        seed: u64,
        parallelism: Parallelism,
        codec: agsfl_wire::CodecSpec,
        channel: impl Fn(usize) -> ChannelModel,
    ) -> Simulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let channel = channel(fed.num_clients());
        Simulation::new(
            Box::new(model),
            fed,
            sparsifier,
            SimulationConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(5.0),
                seed,
                parallelism,
                wire: Some(WireConfig { codec, channel }),
            },
        )
    }

    fn uniform_channel(n: usize) -> ChannelModel {
        ChannelModel::uniform(n, 1.0, 2_000.0, 4_000.0, 0.05)
    }

    fn tiny_sim(sparsifier: Box<dyn Sparsifier>, beta: f64, seed: u64) -> Simulation {
        tiny_sim_with(sparsifier, beta, seed, Parallelism::Auto)
    }

    #[test]
    fn round_advances_time_and_counter() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 0);
        let dim = sim.dim();
        let report = sim.run_round(dim / 10, None);
        assert_eq!(report.round, 1);
        assert_eq!(sim.round(), 1);
        assert!(report.round_time > 1.0);
        assert!((sim.elapsed_time() - report.round_time).abs() < 1e-12);
        assert_eq!(report.contributions.len(), sim.num_clients());
    }

    #[test]
    fn training_reduces_global_loss() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 1);
        let k = sim.dim() / 5;
        let initial = sim.global_train_loss();
        for _ in 0..150 {
            sim.run_round(k, None);
        }
        let trained = sim.global_train_loss();
        assert!(
            trained < initial * 0.8,
            "global loss did not decrease: {initial} -> {trained}"
        );
        assert!(sim.test_accuracy() > 0.2);
    }

    #[test]
    fn send_all_round_costs_full_comm() {
        let mut sim = tiny_sim(Box::new(SendAll::new()), 10.0, 2);
        let report = sim.run_round(1, None);
        assert!((report.round_time - 11.0).abs() < 1e-9);
    }

    #[test]
    fn fab_round_time_matches_sparse_formula() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 3);
        let dim = sim.dim();
        let k = dim / 8;
        let report = sim.run_round(k, None);
        let expected = TimeModel::normalized(10.0).sparse_round_time(dim, k);
        assert!(
            (report.round_time - expected).abs() < 1e-9,
            "round time {} vs expected {expected}",
            report.round_time
        );
    }

    #[test]
    fn probe_report_is_produced_and_sensible() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 10.0, 4);
        let dim = sim.dim();
        let report = sim.run_round(dim / 4, Some(dim / 8));
        let probe = report.probe.expect("probe requested");
        assert_eq!(probe.probe_k, dim / 8);
        assert!(probe.loss_prev.is_finite() && probe.loss_prev > 0.0);
        assert!(probe.loss_now.is_finite());
        assert!(probe.loss_probe.is_finite());
        assert!(probe.probe_round_time < report.round_time);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let mut a = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        let mut b = tiny_sim(Box::new(FubTopK::new()), 5.0, 9);
        for _ in 0..5 {
            let ka = a.run_round(50, None);
            let kb = b.run_round(50, None);
            assert_eq!(ka, kb);
        }
        assert_eq!(a.params(), b.params());
    }

    /// The parallel round engine's load-bearing invariant: a serial run and
    /// a multi-threaded run of the same seed produce equal round reports
    /// (probes included) and bit-equal final weights, for every sparsifier
    /// family the engine shards.
    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 40 + which as u64;
            let mut serial = tiny_sim_with(make(), 5.0, seed, Parallelism::Serial);
            let mut parallel = tiny_sim_with(make(), 5.0, seed, Parallelism::Threads(4));
            let k = serial.dim() / 6;
            for round in 0..4 {
                let probe = if round % 2 == 0 { Some(k / 2) } else { None };
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "sparsifier {which}, round {round}");
            }
            assert_eq!(
                serial.params(),
                parallel.params(),
                "final weights diverged for sparsifier {which}"
            );
        }
    }

    /// The fused evaluation sweep must equal the individual accessors bit
    /// for bit, serial or parallel, across 1–8 workers.
    #[test]
    fn fused_evaluation_matches_accessors_for_any_worker_count() {
        for threads in [1usize, 2, 3, 5, 8] {
            let parallelism = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(threads)
            };
            let mut sim = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 21, parallelism);
            for _ in 0..3 {
                sim.run_round(sim.dim() / 6, None);
            }
            let eval = sim.evaluate();
            assert_eq!(
                eval.train_loss as f64,
                sim.global_train_loss(),
                "threads={threads}"
            );
            assert_eq!(
                eval.train_accuracy as f64,
                sim.global_train_accuracy(),
                "threads={threads}"
            );
            assert_eq!(
                eval.test_accuracy as f64,
                sim.test_accuracy(),
                "threads={threads}"
            );
        }
    }

    /// Evaluation sweeps are part of the determinism invariant: the same
    /// trained state evaluates to identical bits for every worker count.
    #[test]
    fn serial_and_parallel_evaluations_are_identical() {
        let mut serial = tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Serial);
        let mut parallel =
            tiny_sim_with(Box::new(FabTopK::new()), 5.0, 22, Parallelism::Threads(4));
        for _ in 0..3 {
            serial.run_round(40, None);
            parallel.run_round(40, None);
        }
        assert_eq!(serial.evaluate(), parallel.evaluate());
        assert_eq!(serial.global_train_loss(), parallel.global_train_loss());
        assert_eq!(serial.test_accuracy(), parallel.test_accuracy());
        assert_eq!(
            serial.global_train_accuracy(),
            parallel.global_train_accuracy()
        );
    }

    /// The byte-priced path must not perturb training by a single bit: the
    /// codecs are lossless and decode + re-rank reproduces every upload, so
    /// a wired and an un-wired run of the same seed walk the identical
    /// trajectory — only the cost signal (round_time, wire report) differs.
    #[test]
    fn wire_path_keeps_training_bit_identical() {
        let sparsifiers: [fn() -> Box<dyn Sparsifier>; 5] = [
            || Box::new(FabTopK::new()),
            || Box::new(FubTopK::new()),
            || Box::new(UnidirectionalTopK::new()),
            || Box::new(PeriodicK::new()),
            || Box::new(SendAll::new()),
        ];
        for (which, make) in sparsifiers.into_iter().enumerate() {
            let seed = 70 + which as u64;
            let mut plain = tiny_sim(make(), 5.0, seed);
            let mut wired = tiny_wire_sim(
                make(),
                seed,
                Parallelism::Auto,
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let k = plain.dim() / 6;
            for round in 0..3 {
                let probe = if round == 1 { Some(k / 2) } else { None };
                let rp = plain.run_round(k, probe);
                let rw = wired.run_round(k, probe);
                assert_eq!(rp.train_loss, rw.train_loss, "sparsifier {which}");
                assert_eq!(rp.contributions, rw.contributions, "sparsifier {which}");
                assert_eq!(rp.downlink_elements, rw.downlink_elements);
                let wire = rw.wire.expect("wire report present");
                assert_eq!(wire.uplink_bytes.len(), wired.num_clients());
                assert!(wire.downlink_bytes > 0);
                assert!(
                    rw.round_time > wired.config().wire.as_ref().unwrap().channel.compute_time()
                );
            }
            assert_eq!(
                plain.params(),
                wired.params(),
                "weights diverged for sparsifier {which}"
            );
        }
    }

    /// Acceptance invariant: byte-priced simulations stay serial-vs-parallel
    /// identical (full round reports, wire accounting included) across
    /// 1–8 workers.
    #[test]
    fn wire_serial_and_parallel_runs_are_identical() {
        for threads in [2usize, 3, 5, 8] {
            let mut serial = tiny_wire_sim(
                Box::new(FabTopK::new()),
                90,
                Parallelism::Serial,
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let mut parallel = tiny_wire_sim(
                Box::new(FabTopK::new()),
                90,
                Parallelism::Threads(threads),
                agsfl_wire::CodecSpec::Auto,
                uniform_channel,
            );
            let k = serial.dim() / 6;
            for round in 0..3 {
                let probe = if round % 2 == 0 { Some(k / 2) } else { None };
                let rs = serial.run_round(k, probe);
                let rp = parallel.run_round(k, probe);
                assert_eq!(rs, rp, "threads={threads}, round={round}");
            }
            assert_eq!(serial.params(), parallel.params(), "threads={threads}");
        }
    }

    /// A straggler on a heterogeneous channel dominates the round time, and
    /// a bandwidth trace modulates it round by round.
    #[test]
    fn heterogeneous_channel_prices_the_straggler() {
        let mut fast = tiny_wire_sim(
            Box::new(FabTopK::new()),
            91,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| ChannelModel::uniform(n, 1.0, 10_000.0, 10_000.0, 0.0),
        );
        let mut straggler = tiny_wire_sim(
            Box::new(FabTopK::new()),
            91,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| {
                let mut links = vec![ClientLink::new(10_000.0, 10_000.0, 0.0); n];
                links[0] = ClientLink::new(100.0, 10_000.0, 0.0);
                ChannelModel::new(1.0, links)
            },
        );
        let k = fast.dim() / 6;
        let rf = fast.run_round(k, None);
        let rs = straggler.run_round(k, None);
        assert!(
            rs.round_time > rf.round_time * 2.0,
            "straggler {} vs uniform {}",
            rs.round_time,
            rf.round_time
        );
        // Same trajectory regardless of the channel: the channel only
        // prices rounds.
        assert_eq!(rf.train_loss, rs.train_loss);
        assert_eq!(fast.params(), straggler.params());
    }

    #[test]
    fn bandwidth_trace_modulates_round_time() {
        let mut sim = tiny_wire_sim(
            Box::new(FabTopK::new()),
            92,
            Parallelism::Auto,
            agsfl_wire::CodecSpec::Coo,
            |n| {
                ChannelModel::uniform(n, 0.0, 1_000.0, 1_000.0, 0.0)
                    .with_trace(vec![vec![1.0; n], vec![0.25; n]])
            },
        );
        let k = sim.dim() / 8;
        let r0 = sim.run_round(k, None);
        let r1 = sim.run_round(k, None);
        // Round 1 runs at a quarter of the bandwidth: ~4x the comm time.
        assert!(
            r1.round_time > r0.round_time * 3.0,
            "trace did not slow round 1: {} vs {}",
            r1.round_time,
            r0.round_time
        );
    }

    #[test]
    fn periodic_sparsifier_runs() {
        let mut sim = tiny_sim(Box::new(PeriodicK::new()), 10.0, 5);
        let report = sim.run_round(sim.dim() / 10, None);
        assert_eq!(report.downlink_elements, sim.dim() / 10);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let mut sim = tiny_sim(Box::new(FabTopK::new()), 1.0, 6);
        let _ = sim.run_round(0, None);
    }
}
