//! The struct-of-arrays client population behind the cohort engine.
//!
//! A million-client simulation cannot afford a [`Client`] per client: each
//! one owns a materialized shard, reusable scratch buffers, and a resident
//! residual vector. [`ClientPopulation`] keeps only what is genuinely
//! *persistent* across rounds — the private RNG stream, the residual
//! accumulator contents, the mini-batch sampler epoch, and the estimator
//! bookkeeping — in flat parallel columns, and only for clients that have
//! actually participated online at least once. Everything transient (the
//! shard, top-k scratch, wire scratch) lives in a small reusable arena of
//! cohort [`Slot`]s that is rebound to the round's sampled members.
//!
//! Resident memory is therefore `O(slots · shard + touched_clients · dim)`
//! rather than `O(N · (shard + dim))`: with a fixed round budget and cohort
//! size the footprint is flat in the population size `N`, which is the
//! tentpole claim audited by `figures::scale_sweep` in `agsfl-core` and the
//! bounded-RSS smoke step of `scripts/verify.sh`.
//!
//! # Determinism
//!
//! Hydration is a pure O(1) swap ([`Client::swap_persistent`]) and a fresh
//! client's state is a pure function of `(simulation seed, client id)`
//! ([`Client::reset_persistent`]), so which rounds touch which clients —
//! and in which slot a client lands — never changes any stream. Cohort
//! draws ([`draw_cohort`]) advance a dedicated ChaCha8 stream serially
//! before the parallel client pass, and a full-population cohort makes *no*
//! draw at all, which pins the sampled engine bit-identical to the
//! historical owned-client path.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::client::Client;

/// One reusable cohort slot: a transient [`Client`] arena entry plus the
/// round-scoped bookkeeping the engine needs between phases.
#[derive(Debug)]
pub(crate) struct Slot {
    /// The transient client the round's member is hydrated into.
    pub client: Client,
    /// The population row this slot borrowed (`None` for a first-time
    /// participant, whose state was freshly reset instead).
    pub cached_row: Option<usize>,
    /// The member's position within this round's cohort vector.
    pub cohort_pos: usize,
    /// The member is mid-outage this round (fault plan).
    pub offline: bool,
    /// The member's upload is lost in transit this round (fault plan).
    pub dropped: bool,
    /// The member computed a gradient this round (not offline).
    pub online: bool,
    /// Mini-batch loss of this round's local step.
    pub loss: f32,
    /// The ranked upload entries built this round (reused buffer).
    pub entries: Vec<(usize, f32)>,
    /// The encoded uplink frame (reused buffer; empty on scalar rounds).
    pub frame: Vec<u8>,
    /// Per-entry quantization errors `(j, v - v̂)` of this round's lossy
    /// uplink (reused buffer; empty on lossless rounds), fed back into the
    /// residual at reset time.
    pub errors: Vec<(usize, f32)>,
    /// Which client id the slot's shard currently holds, so a member that
    /// lands in the same slot again skips re-materialization.
    pub shard_of: Option<usize>,
}

impl Slot {
    /// Creates an empty slot arena entry.
    pub fn new(feature_dim: usize, dim: usize, batch_size: usize) -> Self {
        Self {
            client: Client::placeholder(feature_dim, dim, batch_size),
            cached_row: None,
            cohort_pos: 0,
            offline: false,
            dropped: false,
            online: false,
            loss: 0.0,
            entries: Vec::new(),
            frame: Vec::new(),
            errors: Vec::new(),
            shard_of: None,
        }
    }
}

/// Persistent per-client state in struct-of-arrays layout, indexed by a
/// deterministic map from client id to row (see the module docs).
#[derive(Debug, Clone, Default)]
pub(crate) struct ClientPopulation {
    /// Client id → row in the columns below. A `BTreeMap` keeps iteration
    /// (and therefore checkpoint bytes) deterministic.
    index: BTreeMap<usize, usize>,
    rng: Vec<ChaCha8Rng>,
    residual: Vec<Vec<f32>>,
    order: Vec<Vec<usize>>,
    cursor: Vec<usize>,
    last_batch: Vec<Vec<usize>>,
    probe_sample: Vec<Option<usize>>,
}

impl ClientPopulation {
    /// An empty population: no client has participated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients with a stored row (participated online at least
    /// once) — the `touched_clients` factor of the memory bound.
    pub fn resident_rows(&self) -> usize {
        self.index.len()
    }

    /// Installs client `id`'s persistent state into `client` and returns
    /// the borrowed row, or `None` if the client has never participated
    /// (the caller must [`Client::reset_persistent`] the slot instead).
    pub fn hydrate(&mut self, id: usize, client: &mut Client) -> Option<usize> {
        let row = *self.index.get(&id)?;
        self.swap_row(row, client);
        Some(row)
    }

    /// Returns a slot's persistent state to the population after the round.
    ///
    /// A slot that borrowed a row swaps it back; a first-time participant
    /// gets a new row *only if it was online* — an offline first-timer's
    /// state is still pristine (offline clients advance no stream), so it
    /// is dropped and recreated identically on its next appearance.
    pub fn dehydrate(
        &mut self,
        id: usize,
        slot_row: Option<usize>,
        online: bool,
        client: &mut Client,
    ) {
        match slot_row {
            Some(row) => {
                debug_assert_eq!(self.index.get(&id), Some(&row), "row index out of sync");
                self.swap_row(row, client);
            }
            None if online => {
                let row = self.rng.len();
                self.rng.push(ChaCha8Rng::seed_from_u64(0));
                self.residual.push(Vec::new());
                self.order.push(Vec::new());
                self.cursor.push(0);
                self.last_batch.push(Vec::new());
                self.probe_sample.push(None);
                self.index.insert(id, row);
                self.swap_row(row, client);
            }
            None => {}
        }
    }

    /// O(1) state exchange between row `row` and `client`.
    fn swap_row(&mut self, row: usize, client: &mut Client) {
        client.swap_persistent(
            &mut self.rng[row],
            &mut self.residual[row],
            &mut self.order[row],
            &mut self.cursor[row],
            &mut self.last_batch[row],
            &mut self.probe_sample[row],
        );
    }

    /// Serializes every stored row in ascending client-id order.
    pub fn write_state(&self, w: &mut SnapshotWriter) {
        w.usize(self.index.len());
        for (&id, &row) in &self.index {
            w.usize(id);
            w.rng(&self.rng[row]);
            w.f32s(&self.residual[row]);
            w.usizes(&self.order[row]);
            w.usize(self.cursor[row]);
            w.usizes(&self.last_batch[row]);
            w.opt_usize(self.probe_sample[row]);
        }
    }

    /// Rebuilds a population serialized by [`ClientPopulation::write_state`].
    ///
    /// `dim` is the model dimension every residual must match;
    /// `num_clients` bounds the ids; `shard_len(id)` is the sample count
    /// the sampler epoch and estimator indices are validated against.
    pub fn read_state(
        r: &mut SnapshotReader<'_>,
        dim: usize,
        num_clients: usize,
        shard_len: impl Fn(usize) -> usize,
    ) -> Result<Self, CheckpointError> {
        let rows = r.usize()?;
        let mut pop = Self::new();
        let mut previous: Option<usize> = None;
        for _ in 0..rows {
            let id = r.usize()?;
            if id >= num_clients || previous.is_some_and(|p| p >= id) {
                return Err(CheckpointError::Invalid("population row ids"));
            }
            previous = Some(id);
            let rng = r.rng()?;
            let residual = r.f32s()?;
            if residual.len() != dim {
                return Err(CheckpointError::Mismatch {
                    field: "client residual length",
                });
            }
            let len = shard_len(id);
            let order = r.usizes()?;
            if order.len() != len {
                return Err(CheckpointError::Mismatch {
                    field: "client sampler order length",
                });
            }
            let cursor = r.usize()?;
            if cursor >= order.len().max(1) {
                return Err(CheckpointError::Invalid("sampler cursor out of range"));
            }
            let mut seen = vec![false; order.len()];
            for &i in &order {
                if i >= order.len() || seen[i] {
                    return Err(CheckpointError::Invalid("sampler order not a permutation"));
                }
                seen[i] = true;
            }
            let last_batch = r.usizes()?;
            if last_batch.iter().any(|&i| i >= len) {
                return Err(CheckpointError::Invalid("batch index out of range"));
            }
            let probe_sample = r.opt_usize()?;
            if probe_sample.is_some_and(|i| i >= len) {
                return Err(CheckpointError::Invalid("probe sample out of range"));
            }
            let row = pop.rng.len();
            pop.rng.push(rng);
            pop.residual.push(residual);
            pop.order.push(order);
            pop.cursor.push(cursor);
            pop.last_batch.push(last_batch);
            pop.probe_sample.push(probe_sample);
            pop.index.insert(id, row);
        }
        Ok(pop)
    }
}

/// Draws one round's cohort into `out` (ascending client ids).
///
/// With `cohort` unset — or at least the population size — every client
/// participates and **no random draw happens**, so configuring
/// `cohort: Some(N)` is bit-identical to no cohort at all (and both leave
/// the cohort stream untouched for later rounds). A strict subset is drawn
/// with Floyd's sampling-without-replacement, which advances `rng` by
/// exactly `cohort` uniform draws regardless of the population size.
pub(crate) fn draw_cohort(
    rng: &mut ChaCha8Rng,
    num_clients: usize,
    cohort: Option<usize>,
    out: &mut Vec<usize>,
) {
    out.clear();
    match cohort {
        Some(c) if c < num_clients => {
            debug_assert!(c > 0, "cohort size must be positive");
            let mut chosen = BTreeSet::new();
            for j in (num_clients - c)..num_clients {
                let t = rng.gen_range(0..=j);
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            out.extend(chosen);
        }
        _ => out.extend(0..num_clients),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort(rng: &mut ChaCha8Rng, n: usize, c: Option<usize>) -> Vec<usize> {
        let mut out = Vec::new();
        draw_cohort(rng, n, c, &mut out);
        out
    }

    #[test]
    fn full_cohort_never_touches_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(cohort(&mut a, 7, None), (0..7).collect::<Vec<_>>());
        assert_eq!(cohort(&mut a, 7, Some(7)), (0..7).collect::<Vec<_>>());
        assert_eq!(cohort(&mut a, 7, Some(100)), (0..7).collect::<Vec<_>>());
        // The stream is untouched: both rngs still agree on the next draw.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn sampled_cohorts_are_sorted_exact_sized_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for round in 0..50 {
            let members = cohort(&mut rng, 100, Some(12));
            assert_eq!(members.len(), 12, "round {round}");
            assert!(members.windows(2).all(|w| w[0] < w[1]));
            assert!(members.iter().all(|&m| m < 100));
        }
    }

    #[test]
    fn cohort_draws_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let mut differs = false;
        for _ in 0..20 {
            let x = cohort(&mut a, 1000, Some(8));
            assert_eq!(x, cohort(&mut b, 1000, Some(8)));
            differs |= x != cohort(&mut c, 1000, Some(8));
        }
        assert!(differs, "different seeds should draw different cohorts");
    }

    #[test]
    fn every_client_is_eventually_sampled() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut seen = [false; 30];
        for _ in 0..200 {
            for m in cohort(&mut rng, 30, Some(5)) {
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "sampler starves some clients");
    }
}
