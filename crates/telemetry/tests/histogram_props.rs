//! Property tests pinning the histogram's bucket scheme, shard-merge
//! bit-identity, and saturation behavior — the executable contract the
//! round-stage telemetry rides on.

use agsfl_telemetry::{Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every value maps into a bucket whose floor is at or below it, the
    /// floor maps back to the same bucket, and the next bucket's floor is
    /// strictly above the value — bucket boundaries are exact.
    #[test]
    fn bucket_boundaries_are_exact(v in 0u64..=u64::MAX) {
        let idx = Histogram::bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let floor = Histogram::bucket_floor(idx);
        prop_assert!(floor <= v);
        prop_assert_eq!(Histogram::bucket_index(floor), idx);
        if idx + 1 < NUM_BUCKETS {
            prop_assert!(Histogram::bucket_floor(idx + 1) > v);
        }
    }

    /// Values below 16 are recorded exactly: the bucket floor *is* the
    /// value.
    #[test]
    fn unit_range_is_lossless(v in 0u64..16) {
        prop_assert_eq!(Histogram::bucket_floor(Histogram::bucket_index(v)), v);
    }

    /// The bucket's relative error is bounded by one sub-bucket width
    /// (1/16 of the octave base), the histogram's resolution claim.
    #[test]
    fn relative_error_is_bounded(v in 16u64..=u64::MAX) {
        let floor = Histogram::bucket_floor(Histogram::bucket_index(v));
        prop_assert!(v - floor <= floor / 16 + 1, "v={} floor={}", v, floor);
    }

    /// Sharding samples across 1–8 recorders and folding them in a fixed
    /// (worker) order is bit-identical to recording everything into one
    /// histogram, for every shard count and assignment.
    #[test]
    fn shard_merge_is_bit_identical(
        samples in collection::vec(0u64..=u64::MAX, 0..300),
        shards in 1usize..=8,
    ) {
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s);
        }
        let mut folded = Histogram::new();
        for p in &parts {
            folded.merge(p);
        }
        prop_assert_eq!(folded, whole);
    }

    /// Merging is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c) bit-for-bit.
    #[test]
    fn merge_is_associative(
        a in collection::vec(0u64..=u64::MAX, 0..100),
        b in collection::vec(0u64..=u64::MAX, 0..100),
        c in collection::vec(0u64..=u64::MAX, 0..100),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging in either order gives identical bits (the merge is
    /// commutative, so "fold in worker order" is a convention, not a
    /// correctness requirement).
    #[test]
    fn merge_is_commutative(
        a in collection::vec(0u64..=u64::MAX, 0..100),
        b in collection::vec(0u64..=u64::MAX, 0..100),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Count and sum saturate at u64 extremes instead of wrapping, and
    /// quantiles stay defined.
    #[test]
    fn extremes_saturate(v in 0u64..=u64::MAX, n in 1u64..=u64::MAX) {
        let mut h = Histogram::new();
        h.record_n(v, n);
        h.record_n(u64::MAX, u64::MAX);
        h.record_n(u64::MAX, u64::MAX);
        prop_assert_eq!(h.count(), u64::MAX);
        prop_assert_eq!(h.sum(), u64::MAX);
        prop_assert_eq!(h.max(), Some(u64::MAX));
        prop_assert!(h.quantile(0.5).is_some());
        prop_assert!(h.quantile(1.0).is_some());
    }

    /// Quantiles are monotone in q and bracketed by min/max buckets.
    #[test]
    fn quantiles_are_monotone(samples in collection::vec(0u64..=u64::MAX, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];
        let mut prev = None;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            if let Some(p) = prev {
                prop_assert!(v >= p, "quantile({}) regressed", q);
            }
            prev = Some(v);
        }
        let lo = Histogram::bucket_floor(Histogram::bucket_index(h.min().unwrap()));
        let hi = Histogram::bucket_floor(Histogram::bucket_index(h.max().unwrap()));
        prop_assert_eq!(h.quantile(0.0).unwrap(), lo);
        prop_assert_eq!(h.quantile(1.0).unwrap(), hi);
    }
}
