//! Log-bucketed HDR-style histogram over `u64` samples.
//!
//! Values below 16 land in exact unit buckets; from 16 up, each power-of-2
//! octave is split into 16 sub-buckets (`SUB_BITS = 4`), so relative
//! resolution is bounded by 1/16 ≈ 6.25% across the full `u64` range and
//! the bucket count is a fixed 976 — small enough to hold one histogram
//! per stage without allocation after construction.
//!
//! Everything the histogram stores is an integer (bucket counts, exact
//! total count/sum, exact min/max), all updated with saturating adds, so
//! merging shard histograms in worker order is associative, commutative,
//! and bit-identical to recording the samples into one histogram — the
//! same merge discipline as the selection shards. Quantiles return the
//! *lower bound* of the bucket holding the requested rank: a deterministic
//! integer, never an interpolation.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUBS_PER_OCTAVE: usize = 1 << SUB_BITS;

/// Total bucket count: 16 exact unit buckets for values `0..16`, then 16
/// sub-buckets for each of the 60 octaves `2^4 ..= 2^63`.
pub const NUM_BUCKETS: usize = SUBS_PER_OCTAVE * (64 - SUB_BITS as usize + 1);

/// The bucket index a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS_PER_OCTAVE as u64 {
        v as usize
    } else {
        // Highest set bit is `octave >= SUB_BITS`; the next SUB_BITS bits
        // below it pick the sub-bucket.
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUBS_PER_OCTAVE as u64 - 1)) as usize;
        (octave - SUB_BITS + 1) as usize * SUBS_PER_OCTAVE + sub
    }
}

/// The smallest value that lands in bucket `idx` (the quantile estimate
/// reported for ranks falling inside it).
#[inline]
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUBS_PER_OCTAVE {
        idx as u64
    } else {
        let octave = (idx / SUBS_PER_OCTAVE) as u32 + SUB_BITS - 1;
        let sub = (idx % SUBS_PER_OCTAVE) as u64;
        (1u64 << octave) | (sub << (octave - SUB_BITS))
    }
}

/// A log-bucketed histogram of `u64` samples with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. The bucket array is the only allocation the
    /// histogram ever performs.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples. All totals saturate instead of
    /// wrapping, so u64-extreme inputs degrade gracefully (pinned by the
    /// saturation proptests).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = &mut self.counts[bucket_of(value)];
        *b = b.saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Integer adds only: merging
    /// shards in any grouping/order is bit-identical to recording every
    /// sample into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty without releasing the bucket array.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (exact sum over exact count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile estimate for `q ∈ [0, 1]`: the lower bound of the
    /// bucket containing the sample of rank `ceil(q · count)` (rank 1 for
    /// `q = 0`). Deterministic — a pure function of the integer bucket
    /// counts. `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_lower_bound(idx));
            }
        }
        // Saturated bucket counts can undercount `seen`; fall back to the
        // highest occupied bucket.
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_lower_bound)
    }

    /// Median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The bucket index a value lands in (exposed for the boundary
    /// proptests).
    pub fn bucket_index(value: u64) -> usize {
        bucket_of(value)
    }

    /// The smallest value mapping to bucket `idx` (exposed for the
    /// boundary proptests).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_BUCKETS`.
    pub fn bucket_floor(idx: usize) -> u64 {
        assert!(idx < NUM_BUCKETS, "bucket index out of range");
        bucket_lower_bound(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(h.quantile((v as f64 + 1.0) / 16.0), Some(v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn bucket_scheme_is_monotone_and_contiguous() {
        // Index 15 -> 16 is the unit/octave seam; floors must keep
        // increasing and every value must land at or above its floor.
        let mut prev_floor = None;
        for idx in 0..NUM_BUCKETS {
            let floor = bucket_lower_bound(idx);
            assert_eq!(bucket_of(floor), idx, "floor of bucket {idx} maps back");
            if let Some(p) = prev_floor {
                assert!(floor > p, "floors must be strictly increasing at {idx}");
            }
            prev_floor = Some(floor);
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17u64, 1000, 123_456, 1 << 40, u64::MAX / 3] {
            let floor = bucket_lower_bound(bucket_of(v));
            assert!(floor <= v);
            // The bucket width is floor/16 at most, so the lower bound is
            // within 1/16 of the true value.
            assert!(
                v - floor <= v / (SUBS_PER_OCTAVE as u64 - 1) + 1,
                "v={v} floor={floor}"
            );
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert_eq!(p50, bucket_lower_bound(bucket_of(100)));
        assert_eq!(p99, bucket_lower_bound(bucket_of(10_000)));
        assert!(h.p95().unwrap() >= p50);
        assert!(p99 >= h.p95().unwrap());
    }

    #[test]
    fn merge_matches_single_recording() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 7919 + i) as u64).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn saturation_never_wraps() {
        let mut h = Histogram::new();
        h.record_n(u64::MAX, u64::MAX);
        h.record_n(u64::MAX, u64::MAX);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(bucket_lower_bound(NUM_BUCKETS - 1)));
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h, Histogram::new());
    }
}
