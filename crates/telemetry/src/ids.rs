//! Enumerated instrument names: span, counter, and gauge identities.
//!
//! Keeping the identities closed enums (instead of string keys) is what
//! makes the recorders allocation-free: every instrument is an index into
//! a fixed array, and a new stage is a compile-time change, not a hash
//! insert on the hot path.

/// One timed stage of the round engine (or of the runner around it).
///
/// The variants mirror the round's dependency graph: the fused client
/// gradient+encode pass, the server-side decode+re-rank, the sharded
/// selection, the probe sweep, downlink pricing, the broadcast weight
/// apply, end-of-round bookkeeping, and the runner-level evaluation and
/// checkpoint writes. `BatchedForward` times the row-parallel CNN
/// inference kernel wherever evaluation calls it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum SpanId {
    /// Cohort hydration: population rows into the reusable slot arena.
    Hydrate,
    /// The fused per-client local-gradient + uplink-encode pass.
    ClientPass,
    /// Server-side frame decode + re-rank into the aggregation arena.
    ServerDecode,
    /// The wire-fault pass (retries, corruption, deadline accounting).
    WireFault,
    /// Sharded server selection of the `k` broadcast elements.
    Selection,
    /// The probe-loss sweep for the derivative-sign estimator.
    Probe,
    /// The O(N) downlink pricing sweep over the channel model.
    DownlinkPricing,
    /// Applying the broadcast sparse update to the shared weights.
    BroadcastApply,
    /// End-of-round bookkeeping (dehydration, residual writeback).
    Bookkeeping,
    /// A full evaluation sweep (global loss/accuracy + test accuracy).
    Evaluate,
    /// One row-parallel batched CNN forward inside evaluation.
    BatchedForward,
    /// Serializing and writing one checkpoint.
    CheckpointWrite,
}

impl SpanId {
    /// Number of span identities.
    pub const COUNT: usize = 12;

    /// Every span, in declaration (and index) order.
    pub const ALL: [SpanId; Self::COUNT] = [
        SpanId::Hydrate,
        SpanId::ClientPass,
        SpanId::ServerDecode,
        SpanId::WireFault,
        SpanId::Selection,
        SpanId::Probe,
        SpanId::DownlinkPricing,
        SpanId::BroadcastApply,
        SpanId::Bookkeeping,
        SpanId::Evaluate,
        SpanId::BatchedForward,
        SpanId::CheckpointWrite,
    ];

    /// The span's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSONL field key.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::Hydrate => "hydrate",
            SpanId::ClientPass => "client_pass",
            SpanId::ServerDecode => "server_decode",
            SpanId::WireFault => "wire_fault",
            SpanId::Selection => "selection",
            SpanId::Probe => "probe",
            SpanId::DownlinkPricing => "downlink_pricing",
            SpanId::BroadcastApply => "broadcast_apply",
            SpanId::Bookkeeping => "bookkeeping",
            SpanId::Evaluate => "evaluate",
            SpanId::BatchedForward => "batched_forward",
            SpanId::CheckpointWrite => "checkpoint_write",
        }
    }
}

/// A monotonically increasing counter.
///
/// The deterministic subset (everything except the timing-derived
/// counters) is sourced from `agsfl_fl::RoundReport` fields that are
/// themselves bit-identical across thread counts, so counter values in
/// the JSONL sink reproduce byte-for-byte between identically seeded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum CounterId {
    /// Rounds recorded.
    Rounds,
    /// Client-rounds: cohort members summed over rounds.
    CohortClients,
    /// Encoded uplink bytes (all clients, all rounds).
    UplinkBytes,
    /// Encoded downlink (broadcast) bytes.
    DownlinkBytes,
    /// Gradient elements broadcast on the downlink.
    DownlinkElements,
    /// Uplink frames encoded.
    UplinkFrames,
    /// Client-rounds spent offline in crash outages.
    FaultOffline,
    /// Uploads lost to Bernoulli dropout.
    FaultDropped,
    /// Straggler client-rounds.
    FaultStragglers,
    /// Corrupted uplink frames observed.
    FaultCorruptFrames,
    /// Uploads lost to any fault (offline + dropped + corrupt + deadline).
    FaultLost,
    /// Extra uplink attempts beyond each client's first.
    FaultRetries,
    /// Bytes re-transmitted by retry attempts.
    FaultRetransmittedBytes,
    /// Rows pushed through the batched CNN forward kernel.
    BatchedForwardRows,
}

impl CounterId {
    /// Number of counter identities.
    pub const COUNT: usize = 14;

    /// Every counter, in declaration (and index) order.
    pub const ALL: [CounterId; Self::COUNT] = [
        CounterId::Rounds,
        CounterId::CohortClients,
        CounterId::UplinkBytes,
        CounterId::DownlinkBytes,
        CounterId::DownlinkElements,
        CounterId::UplinkFrames,
        CounterId::FaultOffline,
        CounterId::FaultDropped,
        CounterId::FaultStragglers,
        CounterId::FaultCorruptFrames,
        CounterId::FaultLost,
        CounterId::FaultRetries,
        CounterId::FaultRetransmittedBytes,
        CounterId::BatchedForwardRows,
    ];

    /// The counter's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSONL field key.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Rounds => "rounds",
            CounterId::CohortClients => "cohort_clients",
            CounterId::UplinkBytes => "uplink_bytes",
            CounterId::DownlinkBytes => "downlink_bytes",
            CounterId::DownlinkElements => "downlink_elements",
            CounterId::UplinkFrames => "uplink_frames",
            CounterId::FaultOffline => "fault_offline",
            CounterId::FaultDropped => "fault_dropped",
            CounterId::FaultStragglers => "fault_stragglers",
            CounterId::FaultCorruptFrames => "fault_corrupt_frames",
            CounterId::FaultLost => "fault_lost",
            CounterId::FaultRetries => "fault_retries",
            CounterId::FaultRetransmittedBytes => "fault_retransmitted_bytes",
            CounterId::BatchedForwardRows => "batched_forward_rows",
        }
    }
}

/// A last-value gauge (the recorder also tracks each gauge's maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum GaugeId {
    /// The sparsity degree `k` used this round.
    KUsed,
    /// Largest per-client uplink frame this round, in bytes.
    MaxUplinkBytes,
    /// Peak pending tasks observed in the worker-pool queue.
    QueueDepthPeak,
    /// Worker threads in the pool.
    PoolWorkers,
    /// Process resident set, bytes.
    RssBytes,
    /// Process peak resident set (high-water mark), bytes.
    RssPeakBytes,
    /// OS threads in the process.
    Threads,
    /// Clients with resident persistent state.
    ResidentClients,
}

impl GaugeId {
    /// Number of gauge identities.
    pub const COUNT: usize = 8;

    /// Every gauge, in declaration (and index) order.
    pub const ALL: [GaugeId; Self::COUNT] = [
        GaugeId::KUsed,
        GaugeId::MaxUplinkBytes,
        GaugeId::QueueDepthPeak,
        GaugeId::PoolWorkers,
        GaugeId::RssBytes,
        GaugeId::RssPeakBytes,
        GaugeId::Threads,
        GaugeId::ResidentClients,
    ];

    /// The gauge's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSONL field key.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::KUsed => "k_used",
            GaugeId::MaxUplinkBytes => "max_uplink_bytes",
            GaugeId::QueueDepthPeak => "queue_depth_peak",
            GaugeId::PoolWorkers => "pool_workers",
            GaugeId::RssBytes => "rss_bytes",
            GaugeId::RssPeakBytes => "rss_peak_bytes",
            GaugeId::Threads => "threads",
            GaugeId::ResidentClients => "resident_clients",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_declaration_order() {
        for (i, s) in SpanId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for s in SpanId::ALL {
            assert!(seen.insert(s.name()), "duplicate span name {}", s.name());
        }
        for c in CounterId::ALL {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
        }
        for g in GaugeId::ALL {
            assert!(seen.insert(g.name()), "duplicate gauge name {}", g.name());
        }
        for name in seen {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "{name} is not snake_case"
            );
        }
    }
}
