//! The `Recorder` trait and its two implementations: the zero-cost
//! [`NoopRecorder`] default and the collecting [`StageRecorder`].

use crate::hist::Histogram;
use crate::ids::{CounterId, GaugeId, SpanId};

/// Sink for instrumentation events.
///
/// Every method has a no-op default, and [`Recorder::enabled`] defaults to
/// `false`: instrumented code gates its clock reads on `enabled()`, so a
/// recorder that keeps the default compiles the instrumentation away
/// entirely after monomorphization. Implementations must not draw
/// randomness or otherwise feed back into the computation they observe —
/// telemetry is read-only with respect to the trajectory.
pub trait Recorder {
    /// Whether this recorder wants events at all. Instrumented code skips
    /// clock reads (and any other observation cost) when this is `false`.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one completed span of `nanos` under `id`.
    #[inline]
    fn span(&mut self, _id: SpanId, _nanos: u64) {}

    /// Adds `delta` to the counter `id`.
    #[inline]
    fn counter(&mut self, _id: CounterId, _delta: u64) {}

    /// Sets the gauge `id` to `value`.
    #[inline]
    fn gauge(&mut self, _id: GaugeId, _value: u64) {}
}

/// The default recorder: discards everything, reports `enabled() = false`.
///
/// `Simulation::run_round` and the other un-instrumented entry points pass
/// this; the optimizer removes the instrumentation they contain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A collecting recorder: one [`Histogram`] per span (cumulative across
/// rounds), exact counters and last/max gauges, plus per-round deltas that
/// reset at [`StageRecorder::begin_round`] — the raw material for the
/// per-round JSONL line and the cumulative summary table.
///
/// All state is preallocated at construction; recording is array indexing
/// and integer adds, never an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecorder {
    spans: Vec<Histogram>,
    round_span_ns: [u64; SpanId::COUNT],
    counters: [u64; CounterId::COUNT],
    round_counters: [u64; CounterId::COUNT],
    gauges: [u64; GaugeId::COUNT],
    gauge_max: [u64; GaugeId::COUNT],
}

impl Default for StageRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StageRecorder {
    /// An empty recorder with every histogram preallocated.
    pub fn new() -> Self {
        Self {
            spans: (0..SpanId::COUNT).map(|_| Histogram::new()).collect(),
            round_span_ns: [0; SpanId::COUNT],
            counters: [0; CounterId::COUNT],
            round_counters: [0; CounterId::COUNT],
            gauges: [0; GaugeId::COUNT],
            gauge_max: [0; GaugeId::COUNT],
        }
    }

    /// Clears the per-round deltas (span nanoseconds and counter deltas);
    /// the cumulative histograms, counters, and gauge maxima persist.
    pub fn begin_round(&mut self) {
        self.round_span_ns = [0; SpanId::COUNT];
        self.round_counters = [0; CounterId::COUNT];
    }

    /// The cumulative histogram of one span.
    pub fn span_histogram(&self, id: SpanId) -> &Histogram {
        &self.spans[id.index()]
    }

    /// Nanoseconds recorded under `id` since the last
    /// [`StageRecorder::begin_round`] (sum over samples).
    pub fn round_span_ns(&self, id: SpanId) -> u64 {
        self.round_span_ns[id.index()]
    }

    /// Cumulative value of a counter.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Counter delta since the last [`StageRecorder::begin_round`].
    pub fn round_counter(&self, id: CounterId) -> u64 {
        self.round_counters[id.index()]
    }

    /// Last value set on a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.index()]
    }

    /// Largest value ever set on a gauge.
    pub fn gauge_peak(&self, id: GaugeId) -> u64 {
        self.gauge_max[id.index()]
    }

    /// Folds another recorder into this one (shard merge, called in worker
    /// order): histograms merge bucket-wise, counters add, gauge maxima
    /// fold by max, and the per-round deltas add. Integer operations only,
    /// so the fold is bit-identical regardless of how samples were
    /// sharded.
    pub fn merge(&mut self, other: &StageRecorder) {
        for (a, b) in self.spans.iter_mut().zip(other.spans.iter()) {
            a.merge(b);
        }
        for (a, &b) in self
            .round_span_ns
            .iter_mut()
            .zip(other.round_span_ns.iter())
        {
            *a = a.saturating_add(b);
        }
        for (a, &b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(b);
        }
        for (a, &b) in self
            .round_counters
            .iter_mut()
            .zip(other.round_counters.iter())
        {
            *a = a.saturating_add(b);
        }
        for (a, &b) in self.gauge_max.iter_mut().zip(other.gauge_max.iter()) {
            *a = (*a).max(b);
        }
    }
}

impl Recorder for StageRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn span(&mut self, id: SpanId, nanos: u64) {
        self.spans[id.index()].record(nanos);
        let slot = &mut self.round_span_ns[id.index()];
        *slot = slot.saturating_add(nanos);
    }

    #[inline]
    fn counter(&mut self, id: CounterId, delta: u64) {
        let total = &mut self.counters[id.index()];
        *total = total.saturating_add(delta);
        let round = &mut self.round_counters[id.index()];
        *round = round.saturating_add(delta);
    }

    #[inline]
    fn gauge(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.index()] = value;
        let peak = &mut self.gauge_max[id.index()];
        *peak = (*peak).max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_free() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        assert!(crate::span_start(&rec).is_none());
    }

    #[test]
    fn stage_recorder_collects_rounds_and_totals() {
        let mut rec = StageRecorder::new();
        assert!(rec.enabled());
        rec.begin_round();
        rec.span(SpanId::Selection, 100);
        rec.span(SpanId::Selection, 50);
        rec.counter(CounterId::UplinkBytes, 7);
        rec.gauge(GaugeId::QueueDepthPeak, 3);
        assert_eq!(rec.round_span_ns(SpanId::Selection), 150);
        assert_eq!(rec.span_histogram(SpanId::Selection).count(), 2);
        assert_eq!(rec.round_counter(CounterId::UplinkBytes), 7);

        rec.begin_round();
        assert_eq!(rec.round_span_ns(SpanId::Selection), 0);
        assert_eq!(rec.round_counter(CounterId::UplinkBytes), 0);
        // Cumulative state survives the round boundary.
        assert_eq!(rec.span_histogram(SpanId::Selection).count(), 2);
        assert_eq!(rec.counter_total(CounterId::UplinkBytes), 7);
        rec.gauge(GaugeId::QueueDepthPeak, 1);
        assert_eq!(rec.gauge_value(GaugeId::QueueDepthPeak), 1);
        assert_eq!(rec.gauge_peak(GaugeId::QueueDepthPeak), 3);
    }

    #[test]
    fn merge_is_bitwise_equal_to_single_recorder() {
        let mut whole = StageRecorder::new();
        let mut a = StageRecorder::new();
        let mut b = StageRecorder::new();
        for i in 0..100u64 {
            let ns = i * 37 + 5;
            whole.span(SpanId::ClientPass, ns);
            whole.counter(CounterId::Rounds, 1);
            if i % 2 == 0 {
                a.span(SpanId::ClientPass, ns);
                a.counter(CounterId::Rounds, 1);
            } else {
                b.span(SpanId::ClientPass, ns);
                b.counter(CounterId::Rounds, 1);
            }
        }
        a.merge(&b);
        assert_eq!(
            a.span_histogram(SpanId::ClientPass),
            whole.span_histogram(SpanId::ClientPass)
        );
        assert_eq!(
            a.counter_total(CounterId::Rounds),
            whole.counter_total(CounterId::Rounds)
        );
    }
}
