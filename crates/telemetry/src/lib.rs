//! Observability substrate for the AGSFL workspace: monotonic span timers
//! over the round's stages, log-bucketed HDR-style histograms with exact
//! count/sum, counters and gauges, and a line-buffered JSONL metrics sink.
//!
//! The crate is dependency-free (consistent with the workspace's
//! vendored-shim policy) and **read-only with respect to the training
//! trajectory**: nothing in here draws randomness, touches fold orders, or
//! allocates on the hot path once a recorder exists. Instrumented code
//! follows one idiom:
//!
//! ```
//! use agsfl_telemetry::{span_start, span_end, NoopRecorder, Recorder, SpanId};
//!
//! let mut rec = NoopRecorder;
//! let t0 = span_start(&rec);
//! // ... the stage's work ...
//! span_end(&mut rec, SpanId::Selection, t0);
//! ```
//!
//! With the default [`NoopRecorder`] the `enabled()` gate is a constant
//! `false`, `span_start` never reads the clock, and `span_end` is a branch
//! on a constant `None` — after monomorphization the instrumentation
//! compiles down to nothing, which is the overhead contract `bench-report`
//! and `scripts/verify.sh` check. A [`StageRecorder`] collects the same
//! calls into per-stage histograms plus per-round deltas.
//!
//! All histogram state is integer: shard merges fold bit-identically in
//! worker order, exactly like every other merge in the codebase, and the
//! bucket scheme (16 sub-buckets per octave, exact below 16) is pinned by
//! proptests in `tests/histogram_props.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod ids;
mod recorder;
mod sink;

use std::time::Instant;

pub use hist::{Histogram, NUM_BUCKETS};
pub use ids::{CounterId, GaugeId, SpanId};
pub use recorder::{NoopRecorder, Recorder, StageRecorder};
pub use sink::JsonlSink;

/// Starts a span clock if — and only if — the recorder is enabled.
///
/// With [`NoopRecorder`] this is a constant `None`: the monotonic clock is
/// never read on un-instrumented runs.
#[inline]
pub fn span_start<R: Recorder + ?Sized>(rec: &R) -> Option<Instant> {
    rec.enabled().then(Instant::now)
}

/// Closes a span opened by [`span_start`], recording the elapsed
/// nanoseconds under `id`. A `None` start (disabled recorder) is free.
#[inline]
pub fn span_end<R: Recorder + ?Sized>(rec: &mut R, id: SpanId, start: Option<Instant>) {
    if let Some(t0) = start {
        rec.span(id, t0.elapsed().as_nanos() as u64);
    }
}
