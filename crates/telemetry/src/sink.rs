//! Line-buffered JSONL sink: one self-describing JSON object per line,
//! each flush a single `write_all` (an atomic append from the writer's
//! side — lines never interleave or tear even if another observer tails
//! the file).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// A JSONL metrics file. Lines are buffered and written out every
/// `flush_every` lines (and on drop), each flush as one `write_all` call.
#[derive(Debug)]
pub struct JsonlSink {
    file: File,
    buf: String,
    pending: usize,
    flush_every: usize,
}

impl JsonlSink {
    /// Creates (truncating) the metrics file at `path`. `flush_every = 1`
    /// writes every line immediately; larger cadences batch lines into one
    /// append.
    pub fn create(path: impl AsRef<Path>, flush_every: usize) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            buf: String::new(),
            pending: 0,
            flush_every: flush_every.max(1),
        })
    }

    /// Buffers one line (a complete JSON object, no trailing newline —
    /// the sink adds it) and flushes if the cadence is reached.
    ///
    /// # Panics
    ///
    /// Panics if `line` contains a newline: a torn line would corrupt the
    /// one-object-per-line contract.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        assert!(
            !line.contains('\n'),
            "JSONL lines must not contain newlines"
        );
        self.buf.push_str(line);
        self.buf.push('\n');
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes all buffered lines as one append.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(self.buf.as_bytes())?;
            self.buf.clear();
            self.pending = 0;
        }
        Ok(())
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best-effort final flush; errors surface on explicit flush().
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("agsfl_telemetry_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn lines_round_trip_and_flush_on_drop() {
        let path = temp_path("roundtrip");
        {
            let mut sink = JsonlSink::create(&path, 10).unwrap();
            sink.write_line("{\"round\":1}").unwrap();
            sink.write_line("{\"round\":2}").unwrap();
            // Cadence of 10 not reached: drop must flush.
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"round\":1}\n{\"round\":2}\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cadence_flushes_without_explicit_call() {
        let path = temp_path("cadence");
        let mut sink = JsonlSink::create(&path, 2).unwrap();
        sink.write_line("{\"a\":1}").unwrap();
        sink.write_line("{\"a\":2}").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        drop(sink);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_previous_runs() {
        let path = temp_path("truncate");
        {
            let mut sink = JsonlSink::create(&path, 1).unwrap();
            sink.write_line("{\"old\":true}").unwrap();
        }
        {
            let mut sink = JsonlSink::create(&path, 1).unwrap();
            sink.write_line("{\"new\":true}").unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"new\":true}\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic]
    fn embedded_newline_panics() {
        let path = temp_path("newline");
        let mut sink = JsonlSink::create(&path, 1).unwrap();
        let _ = sink.write_line("{\"a\":\n1}");
    }
}
