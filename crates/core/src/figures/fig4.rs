//! Fig. 4: comparison of gradient sparsification methods at fixed `k`.
//!
//! The paper fixes `k = 1000` (of `D > 400,000`) and a communication time of
//! 10, and compares FAB-top-k against FUB-top-k, unidirectional top-k,
//! periodic-k, always-send-all and FedAvg on: loss vs normalized time,
//! accuracy vs normalized time, and the CDF of the number of gradient
//! elements used from each client.

use agsfl_fl::RunHistory;
use serde::{Deserialize, Serialize};

use crate::config::{ExperimentConfig, SparsifierSpec};
use crate::report;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Base workload. The communication time should be 10 to match the
    /// paper.
    pub base: ExperimentConfig,
    /// Sparsity degree as a fraction of `D` (the paper's 1000 / ~400k ≈
    /// 0.0025).
    pub k_fraction: f64,
    /// Normalized time budget for every method.
    pub max_time: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            base: ExperimentConfig::default(),
            k_fraction: 0.02,
            max_time: 1_500.0,
        }
    }
}

/// The result of the Fig. 4 experiment: one history per method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// The integer sparsity degree used by the GS methods.
    pub k: usize,
    /// Histories of the five sparsifier-based methods, in
    /// [`SparsifierSpec::all`] order, followed by FedAvg.
    pub histories: Vec<RunHistory>,
}

impl Fig4Result {
    /// The history of a method by label; `None` if not present.
    pub fn history(&self, label: &str) -> Option<&RunHistory> {
        self.histories.iter().find(|h| h.label == label)
    }

    /// Final global loss per method as `(label, loss)` pairs.
    pub fn final_losses(&self) -> Vec<(String, f64)> {
        self.histories
            .iter()
            .map(|h| (h.label.clone(), h.final_global_loss().unwrap_or(f64::NAN)))
            .collect()
    }

    /// Final test accuracy per method as `(label, accuracy)` pairs.
    pub fn final_accuracies(&self) -> Vec<(String, f64)> {
        self.histories
            .iter()
            .map(|h| (h.label.clone(), h.final_test_accuracy().unwrap_or(f64::NAN)))
            .collect()
    }

    /// Renders the loss/accuracy-vs-time tables and the contribution CDF
    /// summary.
    pub fn render(&self, max_time: f64) -> String {
        let refs: Vec<&RunHistory> = self.histories.iter().collect();
        let times = report::sample_times(max_time, 10);
        let mut out = String::new();
        out.push_str(&format!("Fig. 4 — GS method comparison (k = {})\n", self.k));
        out.push_str("\nGlobal loss vs normalized time\n");
        out.push_str(&report::loss_table(&refs, &times));
        out.push_str("\nTest accuracy vs normalized time\n");
        out.push_str(&report::accuracy_table(&refs, &times));
        out.push_str("\nPer-client contributed gradient elements (CDF summary)\n");
        out.push_str(&report::contribution_summary(&refs));
        out
    }
}

/// Runs the Fig. 4 experiment.
pub fn run(config: &Fig4Config) -> Fig4Result {
    let stop = StopCondition::after_time(config.max_time);
    let mut histories = Vec::new();
    let mut k_used = 0usize;
    for spec in SparsifierSpec::all() {
        let experiment_config = ExperimentConfig {
            sparsifier: spec,
            ..config.base.clone()
        };
        let mut experiment = Experiment::new(&experiment_config);
        let dim = experiment.dim();
        let k = ((dim as f64 * config.k_fraction).round() as usize).clamp(1, dim);
        k_used = k;
        let mut history = experiment.run_fixed_k(k, &stop);
        history.label = spec.name().to_string();
        histories.push(history);
    }
    // FedAvg at the equal-average-overhead period.
    let experiment = Experiment::new(&config.base);
    let mut fedavg = experiment.run_fedavg(k_used, &stop);
    fedavg.label = "FedAvg".to_string();
    histories.push(fedavg);
    Fig4Result {
        k: k_used,
        histories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config() -> Fig4Config {
        Fig4Config {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .comm_time(10.0)
                .eval_every(5)
                .seed(1)
                .build(),
            k_fraction: 0.05,
            max_time: 150.0,
        }
    }

    #[test]
    fn produces_six_methods() {
        let result = run(&tiny_config());
        assert_eq!(result.histories.len(), 6);
        assert!(result.history("FAB-top-k").is_some());
        assert!(result.history("FedAvg").is_some());
        for h in &result.histories {
            assert!(!h.is_empty(), "{} produced no rounds", h.label);
            assert!(h.final_global_loss().is_some());
        }
    }

    #[test]
    fn every_method_respects_the_time_budget() {
        let cfg = tiny_config();
        let result = run(&cfg);
        for h in &result.histories {
            let last = h.points().last().unwrap();
            // One round may overshoot the budget, but not by more than a full
            // dense round.
            assert!(last.elapsed_time <= cfg.max_time + 11.0, "{}", h.label);
        }
    }

    #[test]
    fn fab_provides_fairer_contributions_than_fub() {
        let result = run(&tiny_config());
        let fab = result.history("FAB-top-k").unwrap().contribution_cdf();
        let fub = result.history("FUB-top-k").unwrap().contribution_cdf();
        // Fraction of clients that contributed nothing: FAB must not be worse.
        assert!(fab.eval(0.0) <= fub.eval(0.0) + 1e-9);
        // And the least-contributing FAB client contributes at least as much
        // as the least-contributing FUB client.
        assert!(fab.quantile(0.0).unwrap() >= fub.quantile(0.0).unwrap());
    }

    #[test]
    fn render_contains_all_sections() {
        let cfg = tiny_config();
        let result = run(&cfg);
        let text = result.render(cfg.max_time);
        assert!(text.contains("Global loss"));
        assert!(text.contains("Test accuracy"));
        assert!(text.contains("CDF"));
        assert!(text.contains("FedAvg"));
    }
}
