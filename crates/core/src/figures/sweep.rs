//! Figs. 7 and 8: the communication-time sweep with cross-applied `k`
//! sequences.
//!
//! For every communication time `β ∈ {0.1, 1, 10, 100}` the paper adapts
//! `k` with Algorithm 3, records the sequence `{k_m,β}`, and then replays
//! **every** recorded sequence under **every** communication time. Two
//! shapes are expected: the adapted `k` decreases as communication gets more
//! expensive, and the sequence adapted for a given `β` performs best when
//! replayed under that same `β`. Fig. 7 uses FEMNIST, Fig. 8 the
//! one-class-per-client CIFAR-10 partition.

use serde::{Deserialize, Serialize};

use crate::config::{DatasetSpec, ExperimentConfig};
use crate::controllers::ControllerSpec;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the communication-time sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Base workload; its `comm_time` field is overridden per sweep point.
    pub base: ExperimentConfig,
    /// The communication times to sweep. The paper uses `{0.1, 1, 10, 100}`.
    pub comm_times: Vec<f64>,
    /// Number of rounds of the adaptation phase (the phase that records the
    /// `{k_m,β}` sequence).
    pub adaptation_rounds: usize,
    /// Fraction of the adaptation run's elapsed time used as the time budget
    /// for the cross-application runs under the same communication time.
    pub replay_time_fraction: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            base: ExperimentConfig::default(),
            comm_times: vec![0.1, 1.0, 10.0, 100.0],
            adaptation_rounds: 300,
            replay_time_fraction: 0.8,
        }
    }
}

/// Result of adapting `k` for one communication time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptedSequence {
    /// The communication time this sequence was adapted for.
    pub comm_time: f64,
    /// The recorded `{k_m}` sequence.
    pub k_sequence: Vec<usize>,
    /// Normalized time the adaptation run consumed.
    pub adaptation_time: f64,
    /// Mean of `k` over the last quarter of the adaptation run.
    pub tail_mean_k: f64,
}

/// One cell of the cross-application matrix: sequence adapted for
/// `source_comm_time`, replayed under `target_comm_time`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Communication time the sequence was adapted for.
    pub source_comm_time: f64,
    /// Communication time the sequence was replayed under.
    pub target_comm_time: f64,
    /// Final global loss of the replay.
    pub final_loss: f64,
    /// Final test accuracy of the replay.
    pub final_accuracy: f64,
    /// Time budget the replay ran for.
    pub time_budget: f64,
}

/// The full sweep result (one paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Dataset label ("FEMNIST" or "CIFAR-10").
    pub dataset: String,
    /// The adapted sequences, one per communication time.
    pub sequences: Vec<AdaptedSequence>,
    /// The cross-application matrix (all source × target combinations).
    pub replays: Vec<ReplayOutcome>,
}

impl SweepResult {
    /// The replay outcome for a given source/target pair.
    pub fn replay(&self, source: f64, target: f64) -> Option<&ReplayOutcome> {
        self.replays
            .iter()
            .find(|r| r.source_comm_time == source && r.target_comm_time == target)
    }

    /// Returns `true` if the tail-mean adapted `k` is non-increasing in the
    /// communication time (the paper's "larger k for smaller communication
    /// time" observation), comparing the two extreme communication times.
    pub fn k_decreases_with_comm_time(&self) -> bool {
        if self.sequences.len() < 2 {
            return true;
        }
        let first = &self.sequences[0];
        let last = &self.sequences[self.sequences.len() - 1];
        first.tail_mean_k >= last.tail_mean_k
    }

    /// For a given target communication time, returns the source whose
    /// sequence achieved the lowest final loss.
    pub fn best_source_for(&self, target: f64) -> Option<f64> {
        self.replays
            .iter()
            .filter(|r| r.target_comm_time == target)
            .min_by(|a, b| {
                a.final_loss
                    .partial_cmp(&b.final_loss)
                    .expect("finite losses")
            })
            .map(|r| r.source_comm_time)
    }

    /// Renders the adapted-`k` summary and the cross-application loss matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Comm-time sweep with cross-applied k sequences (dataset: {})\n",
            self.dataset
        ));
        out.push_str("\nAdapted k per communication time\n");
        out.push_str(&format!(
            "{:>12}{:>16}{:>20}\n",
            "comm time", "tail mean k", "adaptation time"
        ));
        for s in &self.sequences {
            out.push_str(&format!(
                "{:>12.1}{:>16.0}{:>20.1}\n",
                s.comm_time, s.tail_mean_k, s.adaptation_time
            ));
        }
        out.push_str("\nFinal global loss: rows = sequence source, columns = replay target\n");
        out.push_str(&format!("{:>12}", "source\\tgt"));
        for s in &self.sequences {
            out.push_str(&format!("{:>12.1}", s.comm_time));
        }
        out.push('\n');
        for source in &self.sequences {
            out.push_str(&format!("{:>12.1}", source.comm_time));
            for target in &self.sequences {
                match self.replay(source.comm_time, target.comm_time) {
                    Some(r) => out.push_str(&format!("{:>12.4}", r.final_loss)),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str("\nBest source sequence per target comm time\n");
        for s in &self.sequences {
            if let Some(best) = self.best_source_for(s.comm_time) {
                out.push_str(&format!(
                    "  target {:>6.1}: best source {:>6.1}\n",
                    s.comm_time, best
                ));
            }
        }
        out
    }
}

/// Runs the sweep for an arbitrary base configuration.
pub fn run(config: &SweepConfig, dataset_label: &str) -> SweepResult {
    assert!(!config.comm_times.is_empty(), "need at least one comm time");
    // Phase 1: adapt k for every communication time.
    let mut sequences = Vec::new();
    for &beta in &config.comm_times {
        let experiment_config = ExperimentConfig {
            comm_time: beta,
            ..config.base.clone()
        };
        let mut experiment = Experiment::new(&experiment_config);
        let history = experiment.run_adaptive(
            ControllerSpec::Algorithm3,
            &StopCondition::after_rounds(config.adaptation_rounds),
        );
        let k_sequence = history.k_sequence();
        let tail_start = k_sequence.len().saturating_sub(k_sequence.len() / 4).max(1) - 1;
        let tail = &k_sequence[tail_start..];
        let tail_mean_k = tail.iter().sum::<usize>() as f64 / tail.len().max(1) as f64;
        let adaptation_time = history
            .points()
            .last()
            .map(|p| p.elapsed_time)
            .unwrap_or(0.0);
        sequences.push(AdaptedSequence {
            comm_time: beta,
            k_sequence,
            adaptation_time,
            tail_mean_k,
        });
    }

    // Phase 2: replay every sequence under every communication time.
    let mut replays = Vec::new();
    for target in &sequences {
        let time_budget = target.adaptation_time * config.replay_time_fraction;
        for source in &sequences {
            let experiment_config = ExperimentConfig {
                comm_time: target.comm_time,
                ..config.base.clone()
            };
            let mut experiment = Experiment::new(&experiment_config);
            let history = experiment
                .run_k_sequence(&source.k_sequence, &StopCondition::after_time(time_budget));
            replays.push(ReplayOutcome {
                source_comm_time: source.comm_time,
                target_comm_time: target.comm_time,
                final_loss: history.final_global_loss().unwrap_or(f64::NAN),
                final_accuracy: history.final_test_accuracy().unwrap_or(f64::NAN),
                time_budget,
            });
        }
    }
    SweepResult {
        dataset: dataset_label.to_string(),
        sequences,
        replays,
    }
}

/// Fig. 7: the sweep on the FEMNIST-like dataset.
pub fn run_femnist(config: &SweepConfig) -> SweepResult {
    run(config, "FEMNIST")
}

/// Fig. 8: the sweep on the one-class-per-client CIFAR-10-like dataset.
/// The base dataset in `config` is replaced by the CIFAR benchmark spec if it
/// is not already a CIFAR spec.
pub fn run_cifar(config: &SweepConfig) -> SweepResult {
    let mut config = config.clone();
    if !matches!(config.base.dataset, DatasetSpec::Cifar(_)) {
        config.base.dataset = DatasetSpec::cifar_bench();
    }
    run(&config, "CIFAR-10")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .eval_every(10)
                .seed(5)
                .build(),
            comm_times: vec![0.1, 100.0],
            adaptation_rounds: 80,
            replay_time_fraction: 0.5,
        }
    }

    #[test]
    fn sweep_produces_all_combinations() {
        let result = run_femnist(&tiny_sweep());
        assert_eq!(result.sequences.len(), 2);
        assert_eq!(result.replays.len(), 4);
        assert!(result.replay(0.1, 100.0).is_some());
        assert!(result.replay(100.0, 0.1).is_some());
        for r in &result.replays {
            assert!(r.final_loss.is_finite());
        }
    }

    #[test]
    fn adapted_k_decreases_with_communication_time() {
        let result = run_femnist(&tiny_sweep());
        assert!(
            result.k_decreases_with_comm_time(),
            "tail k: {:?}",
            result
                .sequences
                .iter()
                .map(|s| (s.comm_time, s.tail_mean_k))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn cifar_sweep_uses_cifar_dataset() {
        let mut cfg = tiny_sweep();
        cfg.adaptation_rounds = 30;
        let result = run_cifar(&cfg);
        assert_eq!(result.dataset, "CIFAR-10");
        assert_eq!(result.sequences.len(), 2);
    }

    #[test]
    fn render_contains_matrix_and_summary() {
        let result = run_femnist(&tiny_sweep());
        let text = result.render();
        assert!(text.contains("Adapted k"));
        assert!(text.contains("source\\tgt"));
        assert!(text.contains("Best source"));
    }
}
