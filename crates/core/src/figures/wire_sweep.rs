//! Wire-codec × channel-regime sweep (a byte-accurate companion to the
//! paper's communication-time sweeps of Figs. 7–8).
//!
//! The paper's evaluation prices communication with the `2k`-scalar proxy;
//! this figure re-prices it in bytes: every codec in
//! [`WireSweepConfig::codecs`] runs under every channel regime in
//! [`WireSweepConfig::channels`], once with a **fixed** `k` and once with
//! Algorithm 3 **adapting** `k` against the byte-priced round time.
//!
//! The fixed-`k` rows isolate pure codec efficiency: the training
//! trajectory (and therefore every message) is bit-identical across codecs
//! — lossless codecs don't touch the math — so the byte totals compare the
//! encodings on exactly the same message stream, and `Auto` is guaranteed
//! to sit at or below every concrete codec. The adaptive rows show the
//! paper's controllers responding to the channel: a cheaper codec or a
//! faster regime affords a larger sparsity degree `k`, which is the
//! "codec-dependent optimal k" effect the scalar proxy cannot express.

use agsfl_wire::{CodecSpec, Precision};
use serde::{Deserialize, Serialize};

use crate::config::{ChannelSpec, ExperimentConfig, WireSpec};
use crate::controllers::ControllerSpec;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the wire sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSweepConfig {
    /// Base workload; its `wire` field is overridden per sweep cell.
    pub base: ExperimentConfig,
    /// Codecs to compare.
    pub codecs: Vec<CodecSpec>,
    /// Labelled channel regimes to compare.
    pub channels: Vec<(String, ChannelSpec)>,
    /// Rounds per run.
    pub rounds: usize,
    /// The fixed sparsity degree, as a fraction of the model dimension.
    pub fixed_k_fraction: f64,
}

impl Default for WireSweepConfig {
    fn default() -> Self {
        Self {
            base: ExperimentConfig::default(),
            codecs: CodecSpec::all().to_vec(),
            channels: vec![
                (
                    "uniform".to_string(),
                    ChannelSpec::uniform(2_000.0, 8_000.0, 0.05),
                ),
                (
                    "heterogeneous".to_string(),
                    ChannelSpec::uniform(2_000.0, 8_000.0, 0.05).with_spread(4.0),
                ),
                (
                    "fluctuating".to_string(),
                    ChannelSpec::uniform(2_000.0, 8_000.0, 0.05).with_fluctuation(20, 0.75),
                ),
            ],
            rounds: 120,
            fixed_k_fraction: 0.05,
        }
    }
}

/// One sweep cell: a codec under a channel regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSweepCell {
    /// Channel regime label.
    pub channel: String,
    /// The codec under test.
    pub codec: CodecSpec,
    /// Total uplink bytes over the run.
    pub uplink_bytes: u64,
    /// Total downlink bytes over the run.
    pub downlink_bytes: u64,
    /// Channel-priced time the run consumed.
    pub elapsed_time: f64,
    /// Final global loss.
    pub final_loss: f64,
    /// Mean `k` over the last quarter of the run.
    pub tail_mean_k: f64,
    /// Frame counts per concrete encoding (index = `CodecId as usize`);
    /// shows what `Auto` actually picked.
    pub codec_counts: Vec<u64>,
}

impl WireSweepCell {
    /// Total bytes on the wire (uplink + downlink).
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }
}

/// One point on the bytes-vs-accuracy Pareto frontier: a fixed-`k` run
/// under one [`Precision`] tier (same `k`, same channel, same seed — only
/// the uplink value precision differs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionParetoPoint {
    /// The precision tier's name (`f32`, `f16`, `q8`, `sign`).
    pub precision: String,
    /// The run's byte totals and training outcome.
    pub cell: WireSweepCell,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSweepResult {
    /// Fixed-`k` cells: identical trajectories per channel, isolating codec
    /// size.
    pub fixed: Vec<WireSweepCell>,
    /// Adaptive-`k` cells: Algorithm 3 responding to the byte-priced
    /// channel.
    pub adaptive: Vec<WireSweepCell>,
    /// Bytes-vs-accuracy Pareto frontier over the precision tiers, on the
    /// first channel regime (ordered most → least precise).
    pub pareto: Vec<PrecisionParetoPoint>,
}

impl WireSweepResult {
    fn find<'a>(
        cells: &'a [WireSweepCell],
        channel: &str,
        codec: CodecSpec,
    ) -> Option<&'a WireSweepCell> {
        cells
            .iter()
            .find(|c| c.channel == channel && c.codec == codec)
    }

    /// The fixed-`k` cell for a channel/codec pair.
    pub fn fixed_cell(&self, channel: &str, codec: CodecSpec) -> Option<&WireSweepCell> {
        Self::find(&self.fixed, channel, codec)
    }

    /// The adaptive cell for a channel/codec pair.
    pub fn adaptive_cell(&self, channel: &str, codec: CodecSpec) -> Option<&WireSweepCell> {
        Self::find(&self.adaptive, channel, codec)
    }

    /// For a channel regime, the codec whose fixed-`k` run put the fewest
    /// bytes on the wire.
    pub fn smallest_codec_for(&self, channel: &str) -> Option<CodecSpec> {
        self.fixed
            .iter()
            .filter(|c| c.channel == channel)
            .min_by_key(|c| c.total_bytes())
            .map(|c| c.codec)
    }

    fn render_table(out: &mut String, title: &str, cells: &[WireSweepCell]) {
        out.push_str(&format!("\n{title}\n"));
        out.push_str(&format!(
            "{:>14}{:>14}{:>14}{:>14}{:>12}{:>12}{:>12}\n",
            "channel", "codec", "up [B]", "down [B]", "time", "loss", "tail k"
        ));
        for c in cells {
            out.push_str(&format!(
                "{:>14}{:>14}{:>14}{:>14}{:>12.1}{:>12.4}{:>12.0}\n",
                c.channel,
                c.codec.name(),
                c.uplink_bytes,
                c.downlink_bytes,
                c.elapsed_time,
                c.final_loss,
                c.tail_mean_k
            ));
        }
    }

    /// The Pareto point for a precision tier, by name.
    pub fn pareto_point(&self, precision: Precision) -> Option<&PrecisionParetoPoint> {
        self.pareto.iter().find(|p| p.precision == precision.name())
    }

    /// Renders all three tables.
    pub fn render(&self) -> String {
        let mut out = String::from("Wire codec x channel sweep (byte-priced rounds)\n");
        Self::render_table(
            &mut out,
            "Fixed k (identical trajectories; bytes compare codecs)",
            &self.fixed,
        );
        Self::render_table(
            &mut out,
            "Adaptive k (Algorithm 3 against the byte-priced channel)",
            &self.adaptive,
        );
        out.push_str("\nPrecision Pareto (fixed k; uplink bytes vs final loss)\n");
        out.push_str(&format!(
            "{:>10}{:>14}{:>12}{:>12}\n",
            "precision", "up [B]", "loss", "time"
        ));
        for p in &self.pareto {
            out.push_str(&format!(
                "{:>10}{:>14}{:>12.4}{:>12.1}\n",
                p.precision, p.cell.uplink_bytes, p.cell.final_loss, p.cell.elapsed_time
            ));
        }
        out
    }
}

fn run_cell(
    config: &WireSweepConfig,
    channel_label: &str,
    channel: ChannelSpec,
    codec: CodecSpec,
    adaptive: bool,
) -> WireSweepCell {
    let experiment_config = ExperimentConfig {
        wire: Some(WireSpec { codec, channel }),
        ..config.base.clone()
    };
    let mut experiment = Experiment::new(&experiment_config);
    let stop = StopCondition::after_rounds(config.rounds);
    let history = if adaptive {
        experiment.run_adaptive(ControllerSpec::Algorithm3, &stop)
    } else {
        let k = ((experiment.dim() as f64 * config.fixed_k_fraction) as usize).max(1);
        experiment.run_fixed_k(k, &stop)
    };
    let ks = history.k_sequence();
    // The last quarter of the run (at least one round when the run is short).
    let tail_len = (ks.len() / 4).max(1).min(ks.len());
    let tail = &ks[ks.len() - tail_len..];
    let (uplink_bytes, downlink_bytes) = history.wire_bytes();
    WireSweepCell {
        channel: channel_label.to_string(),
        codec,
        uplink_bytes,
        downlink_bytes,
        elapsed_time: history
            .points()
            .last()
            .map(|p| p.elapsed_time)
            .unwrap_or(0.0),
        final_loss: history.final_global_loss().unwrap_or(f64::NAN),
        tail_mean_k: tail.iter().sum::<usize>() as f64 / tail.len().max(1) as f64,
        codec_counts: history.codec_counts().to_vec(),
    }
}

/// Runs the sweep, including the precision-tier Pareto frontier on the
/// first channel regime.
pub fn run(config: &WireSweepConfig) -> WireSweepResult {
    assert!(!config.codecs.is_empty(), "need at least one codec");
    assert!(!config.channels.is_empty(), "need at least one channel");
    let mut fixed = Vec::new();
    let mut adaptive = Vec::new();
    for (label, channel) in &config.channels {
        for &codec in &config.codecs {
            fixed.push(run_cell(config, label, *channel, codec, false));
            adaptive.push(run_cell(config, label, *channel, codec, true));
        }
    }
    let (pareto_label, pareto_channel) = &config.channels[0];
    let pareto = Precision::ALL
        .iter()
        .map(|&tier| PrecisionParetoPoint {
            precision: tier.name().to_string(),
            cell: run_cell(
                config,
                pareto_label,
                *pareto_channel,
                tier.codec_spec(),
                false,
            ),
        })
        .collect();
    WireSweepResult {
        fixed,
        adaptive,
        pareto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_sweep() -> WireSweepConfig {
        WireSweepConfig {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .eval_every(10)
                .seed(13)
                .build(),
            codecs: CodecSpec::all().to_vec(),
            channels: vec![
                (
                    "uniform".into(),
                    ChannelSpec::uniform(2_000.0, 8_000.0, 0.05),
                ),
                (
                    "fluctuating".into(),
                    ChannelSpec::uniform(2_000.0, 8_000.0, 0.05).with_fluctuation(8, 0.75),
                ),
            ],
            rounds: 25,
            // Large enough that per-frame headers (QLinear8's 8-byte value
            // range) amortize the way they do at production scale.
            fixed_k_fraction: 0.15,
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_counts_bytes() {
        let result = run(&tiny_sweep());
        assert_eq!(result.fixed.len(), 8);
        assert_eq!(result.adaptive.len(), 8);
        for cell in result.fixed.iter().chain(result.adaptive.iter()) {
            assert!(cell.uplink_bytes > 0, "{cell:?}");
            assert!(cell.downlink_bytes > 0, "{cell:?}");
            assert!(cell.final_loss.is_finite());
            assert!(cell.elapsed_time > 0.0);
        }
    }

    /// On identical fixed-k trajectories, Auto's total bytes never exceed
    /// any concrete codec's — the size-ordering guarantee, end to end.
    #[test]
    fn auto_is_smallest_on_fixed_trajectories() {
        let result = run(&tiny_sweep());
        for (label, _) in &tiny_sweep().channels {
            let auto = result.fixed_cell(label, CodecSpec::Auto).unwrap();
            for codec in [CodecSpec::Coo, CodecSpec::DeltaVarint, CodecSpec::Bitmap] {
                let concrete = result.fixed_cell(label, codec).unwrap();
                assert!(
                    auto.total_bytes() <= concrete.total_bytes(),
                    "{label}: auto {} > {} {}",
                    auto.total_bytes(),
                    codec.name(),
                    concrete.total_bytes()
                );
                // Identical trajectories: the training outcome is the same
                // bits for every codec.
                assert_eq!(auto.final_loss, concrete.final_loss, "{label}");
            }
            // Auto ties the smallest concrete codec byte-for-byte (it may
            // lose the label on a tie, but never the total).
            let smallest = result.smallest_codec_for(label).unwrap();
            let smallest_total = result.fixed_cell(label, smallest).unwrap().total_bytes();
            assert_eq!(auto.total_bytes(), smallest_total, "{label}");
        }
    }

    #[test]
    fn auto_records_its_choices() {
        let result = run(&tiny_sweep());
        let auto = result.fixed_cell("uniform", CodecSpec::Auto).unwrap();
        assert_eq!(auto.codec_counts.len(), agsfl_wire::CodecId::ALL.len());
        let frames: u64 = auto.codec_counts.iter().sum();
        assert!(frames > 0, "Auto must record per-frame choices");
        let coo = result.fixed_cell("uniform", CodecSpec::Coo).unwrap();
        assert_eq!(coo.codec_counts[1], 0, "Coo never emits delta frames");
        assert_eq!(coo.codec_counts[2], 0, "Coo never emits bitmap frames");
    }

    #[test]
    fn render_lists_all_tables() {
        let mut cfg = tiny_sweep();
        cfg.codecs = vec![CodecSpec::Auto];
        cfg.rounds = 6;
        let result = run(&cfg);
        let text = result.render();
        assert!(text.contains("Fixed k"));
        assert!(text.contains("Adaptive k"));
        assert!(text.contains("auto"));
        assert!(text.contains("Precision Pareto"));
        for tier in Precision::ALL {
            assert!(text.contains(tier.name()), "missing tier {}", tier.name());
        }
    }

    /// The issue's byte-budget acceptance bar: at the same fixed `k`,
    /// QLinear8 (1-byte levels + an 8-byte range header) must spend at most
    /// 0.35× the uplink bytes of lossless CooF32 (8 bytes per entry).
    #[test]
    fn qlinear8_fixed_k_spends_under_035x_of_coo() {
        let result = run(&tiny_sweep());
        let q8 = result.pareto_point(Precision::Q8).unwrap();
        let coo = result.fixed_cell("uniform", CodecSpec::Coo).unwrap();
        let ratio = q8.cell.uplink_bytes as f64 / coo.uplink_bytes as f64;
        assert!(
            ratio <= 0.35,
            "qlinear8 spent {} uplink bytes vs coo-f32's {} ({ratio:.3}x > 0.35x)",
            q8.cell.uplink_bytes,
            coo.uplink_bytes
        );
        // Lossier tiers keep shrinking the frontier's byte axis.
        let f16 = result.pareto_point(Precision::F16).unwrap();
        let sign = result.pareto_point(Precision::Sign).unwrap();
        let f32_tier = result.pareto_point(Precision::F32).unwrap();
        assert!(f16.cell.uplink_bytes < f32_tier.cell.uplink_bytes);
        assert!(q8.cell.uplink_bytes < f16.cell.uplink_bytes);
        assert!(sign.cell.uplink_bytes < q8.cell.uplink_bytes);
    }

    /// Convergence sanity for the documented tolerance: the error-feedback
    /// loop keeps a QLinear8 run's final loss within 10% (relative) of the
    /// lossless run at the same fixed `k`.
    #[test]
    fn qlinear8_final_loss_tracks_lossless() {
        let result = run(&tiny_sweep());
        let q8 = result.pareto_point(Precision::Q8).unwrap().cell.final_loss;
        let lossless = result.pareto_point(Precision::F32).unwrap().cell.final_loss;
        assert!(q8.is_finite() && lossless.is_finite());
        assert!(
            (q8 - lossless).abs() <= 0.10 * lossless,
            "qlinear8 final loss {q8:.4} strays >10% from lossless {lossless:.4}"
        );
    }
}
