//! Fig. 6: Algorithm 2 versus Algorithm 3 at a large communication time.
//!
//! With a communication time of 100, the paper shows that the extended
//! algorithm (shrinking search intervals) both learns faster in wall-clock
//! terms and produces a much less fluctuating `k_m` trajectory than plain
//! Algorithm 2.

use agsfl_fl::RunHistory;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::controllers::ControllerSpec;
use crate::report;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Base workload; the paper uses communication time 100 here.
    pub base: ExperimentConfig,
    /// Normalized time budget per algorithm.
    pub max_time: f64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Self {
            base: ExperimentConfig {
                comm_time: 100.0,
                ..ExperimentConfig::default()
            },
            max_time: 4_000.0,
        }
    }
}

/// The result of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// History of Algorithm 3.
    pub algorithm3: RunHistory,
    /// History of Algorithm 2.
    pub algorithm2: RunHistory,
}

impl Fig6Result {
    /// Spread (max − min) of `k` over the last `window` rounds for both
    /// algorithms, as `(algorithm 3, algorithm 2)`.
    pub fn k_spreads(&self, window: usize) -> (f64, f64) {
        let spread = |h: &RunHistory| {
            let ks = h.k_sequence();
            let tail = &ks[ks.len().saturating_sub(window)..];
            let max = tail.iter().copied().max().unwrap_or(0) as f64;
            let min = tail.iter().copied().min().unwrap_or(0) as f64;
            max - min
        };
        (spread(&self.algorithm3), spread(&self.algorithm2))
    }

    /// Final global losses as `(algorithm 3, algorithm 2)`.
    pub fn final_losses(&self) -> (f64, f64) {
        (
            self.algorithm3.final_global_loss().unwrap_or(f64::NAN),
            self.algorithm2.final_global_loss().unwrap_or(f64::NAN),
        )
    }

    /// Renders the comparison tables.
    pub fn render(&self, max_time: f64) -> String {
        let refs = [&self.algorithm3, &self.algorithm2];
        let times = report::sample_times(max_time, 10);
        let mut out = String::new();
        out.push_str("Fig. 6 — Algorithm 3 vs Algorithm 2 (communication time 100)\n");
        out.push_str("\nGlobal loss vs normalized time\n");
        out.push_str(&report::loss_table(&refs, &times));
        out.push_str("\nTest accuracy vs normalized time\n");
        out.push_str(&report::accuracy_table(&refs, &times));
        out.push_str("\nk_m trajectories\n");
        out.push_str(&report::k_trajectory_table(&refs, 15));
        let (s3, s2) = self.k_spreads(50);
        out.push_str(&format!(
            "\nk spread over final 50 rounds: Algorithm 3 = {s3:.0}, Algorithm 2 = {s2:.0}\n"
        ));
        out
    }
}

/// Runs the Fig. 6 experiment.
pub fn run(config: &Fig6Config) -> Fig6Result {
    let stop = StopCondition::after_time(config.max_time);
    let mut exp3 = Experiment::new(&config.base);
    let mut algorithm3 = exp3.run_adaptive(ControllerSpec::Algorithm3, &stop);
    algorithm3.label = "Algorithm 3".to_string();
    let mut exp2 = Experiment::new(&config.base);
    let mut algorithm2 = exp2.run_adaptive(ControllerSpec::Algorithm2, &stop);
    algorithm2.label = "Algorithm 2".to_string();
    Fig6Result {
        algorithm3,
        algorithm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config() -> Fig6Config {
        Fig6Config {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .comm_time(100.0)
                .eval_every(10)
                .seed(4)
                .build(),
            max_time: 1_200.0,
        }
    }

    #[test]
    fn both_algorithms_produce_histories() {
        let result = run(&tiny_config());
        assert!(!result.algorithm2.is_empty());
        assert!(!result.algorithm3.is_empty());
        assert!(result.final_losses().0.is_finite());
        assert!(result.final_losses().1.is_finite());
    }

    #[test]
    fn algorithm3_k_fluctuates_no_more_than_algorithm2() {
        let result = run(&tiny_config());
        let (s3, s2) = result.k_spreads(20);
        assert!(
            s3 <= s2 + 1.0,
            "Algorithm 3 spread {s3} vs Algorithm 2 {s2}"
        );
    }

    #[test]
    fn render_contains_both_algorithms() {
        let cfg = tiny_config();
        let text = run(&cfg).render(cfg.max_time);
        assert!(text.contains("Algorithm 3"));
        assert!(text.contains("Algorithm 2"));
        assert!(text.contains("k spread"));
    }
}
