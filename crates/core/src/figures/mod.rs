//! One module per figure of the paper's evaluation (Section V).
//!
//! Every figure has a `*Config` describing the workload (with defaults sized
//! so the whole suite regenerates in seconds on a laptop — see the
//! substitution table in `DESIGN.md`) and a `*Result` holding the exact
//! series the paper plots plus a `render()` method that prints them as text
//! tables. The benchmark crate (`agsfl-bench`) calls these functions and
//! `EXPERIMENTS.md` records the measured shapes against the paper's.
//!
//! | Paper figure | Function |
//! |---|---|
//! | Fig. 1 (Assumption 1 validation) | [`fig1::run`] |
//! | Fig. 4 (GS method comparison) | [`fig4::run`] |
//! | Fig. 5 (adaptive-`k` method comparison) | [`fig5::run`] |
//! | Fig. 6 (Algorithm 2 vs Algorithm 3) | [`fig6::run`] |
//! | Fig. 7 (comm-time sweep, FEMNIST) | [`sweep::run_femnist`] |
//! | Fig. 8 (comm-time sweep, CIFAR-10) | [`sweep::run_cifar`] |
//! | Theorems 1–2 (regret bounds) | [`regret_check::run`] |
//! | Wire codec × channel sweep (byte-priced, beyond the paper) | [`wire_sweep::run`] |
//! | Fault-severity sweep (robustness, beyond the paper) | [`fault_sweep::run`] |
//! | Population-scale sweep (cohort memory audit, beyond the paper) | [`scale_sweep::run`] |

pub mod fault_sweep;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod regret_check;
pub mod scale_sweep;
pub mod sweep;
pub mod wire_sweep;
