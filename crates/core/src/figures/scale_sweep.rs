//! Population-scale sweep: rounds/sec and server resident memory as the
//! client count grows from 10³ to 10⁶ at a fixed cohort size.
//!
//! This is the audit for the cohort engine's memory claim: the server is
//! `O(cohort · k + touched_clients · D)` resident, *independent of the
//! population size `N`*. Each sweep point builds a lazily materialized
//! population ([`LazySyntheticFemnist`] — shards exist only while a round
//! holds them), samples the same fixed-size cohort per round, and records
//! wall-clock round throughput plus the process' resident set as observed
//! by the OS ([`agsfl_exec::mem`]). A healthy table shows RSS flat across
//! four orders of magnitude of `N` while rounds/sec stays roughly constant
//! (the per-round cost is a function of the cohort, not the population).
//!
//! The result also serializes to one line of bench-history JSON
//! ([`ScaleSweepResult::history_json_line`]) so `BENCH_history.jsonl`
//! tracks the scale claim across PRs alongside the kernel timings.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use agsfl_exec::{mem, Parallelism};
use agsfl_fl::{Simulation, SimulationConfig, TimeModel};
use agsfl_ml::data::{LazySyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::FabTopK;
use agsfl_telemetry::{SpanId, StageRecorder};

/// Configuration of the scale sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleSweepConfig {
    /// Population sizes to sweep (the `N` axis).
    pub populations: Vec<usize>,
    /// Fixed per-round cohort size shared by every point.
    pub cohort: usize,
    /// Rounds per point.
    pub rounds: usize,
    /// Sparsity degree `k` uploaded/selected each round.
    pub k: usize,
    /// Samples held by each client's (lazily materialized) shard.
    pub samples_per_client: usize,
    /// Feature dimension of the synthetic workload.
    pub feature_dim: usize,
    /// Class count of the synthetic workload.
    pub num_classes: usize,
    /// Per-client mini-batch size.
    pub batch_size: usize,
    /// Master seed (population `N` is mixed in per point so the sweep's
    /// points draw distinct but reproducible workloads).
    pub seed: u64,
}

impl Default for ScaleSweepConfig {
    fn default() -> Self {
        Self {
            populations: vec![1_000, 10_000, 100_000, 1_000_000],
            cohort: 256,
            rounds: 8,
            k: 32,
            samples_per_client: 64,
            feature_dim: 32,
            num_classes: 16,
            batch_size: 8,
            seed: 97,
        }
    }
}

impl ScaleSweepConfig {
    fn dataset_config(&self, num_clients: usize) -> SyntheticFemnistConfig {
        SyntheticFemnistConfig {
            num_clients,
            samples_per_client: self.samples_per_client,
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
            classes_per_client: (self.num_classes / 2).max(1),
            writer_shift_std: 0.5,
            noise_std: 0.5,
            test_samples: 128,
        }
    }
}

/// One sweep point: a population size under the shared cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleSweepPoint {
    /// Population size `N`.
    pub population: usize,
    /// Cohort size actually run (`min(cohort, N)`).
    pub cohort: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Wall-clock round throughput.
    pub rounds_per_sec: f64,
    /// Clients whose persistent state is resident after the run — the
    /// `touched_clients` factor of the memory bound, always ≤ rounds·cohort.
    pub resident_clients: usize,
    /// Process resident set after the point's rounds (`None` off Linux).
    pub current_rss_bytes: Option<u64>,
    /// Process peak resident set so far (`None` off Linux). Monotone across
    /// points — the kernel never lowers the high-water mark — so flatness
    /// is read off `current_rss_bytes`.
    pub peak_rss_bytes: Option<u64>,
    /// Per-stage wall time over the point's rounds, `(stage name, total
    /// nanoseconds)` from the round engine's [`StageRecorder`] — only
    /// stages that actually ran appear. A healthy sweep shows the same
    /// stage shares at every `N`: hydration and the client pass scale with
    /// the cohort, never with the population.
    pub stage_ns: Vec<(String, u64)>,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleSweepResult {
    /// One point per population size, in sweep order.
    pub points: Vec<ScaleSweepPoint>,
}

impl ScaleSweepResult {
    /// Largest `current_rss_bytes` over the sweep, if the platform reports
    /// memory at all.
    pub fn max_current_rss_bytes(&self) -> Option<u64> {
        self.points.iter().filter_map(|p| p.current_rss_bytes).max()
    }

    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        fn mib(bytes: Option<u64>) -> String {
            match bytes {
                Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
                None => "n/a".to_string(),
            }
        }
        let mut out = String::from("Scale sweep: fixed cohort, lazily materialized population\n");
        out.push_str(&format!(
            "{:>12}{:>9}{:>8}{:>12}{:>10}{:>12}{:>12}\n",
            "N", "cohort", "rounds", "rounds/s", "resident", "rss [MiB]", "peak [MiB]"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:>12}{:>9}{:>8}{:>12.1}{:>10}{:>12}{:>12}\n",
                p.population,
                p.cohort,
                p.rounds,
                p.rounds_per_sec,
                p.resident_clients,
                mib(p.current_rss_bytes),
                mib(p.peak_rss_bytes)
            ));
        }
        out.push_str("\nPer-stage wall time [ms] (flat columns = O(cohort) rounds):\n");
        let stages: Vec<&str> = self
            .points
            .first()
            .map(|p| p.stage_ns.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();
        out.push_str(&format!("{:>12}", "N"));
        for stage in &stages {
            out.push_str(&format!("{:>16}", stage));
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:>12}", p.population));
            for stage in &stages {
                let ns = p
                    .stage_ns
                    .iter()
                    .find(|(n, _)| n == stage)
                    .map_or(0, |&(_, ns)| ns);
                out.push_str(&format!("{:>16.2}", ns as f64 / 1_000_000.0));
            }
            out.push('\n');
        }
        out
    }

    /// One line of bench-history JSON (`suite: "scale_sweep"`), matching
    /// the hand-rolled format `bench-report` appends for the kernel suite.
    pub fn history_json_line(&self, unix_secs: u64) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(ScaleSweepPoint::json_object)
            .collect();
        format!(
            "{{\"unix_time\":{},\"suite\":\"scale_sweep\",\"points\":[{}]}}\n",
            unix_secs,
            points.join(",")
        )
    }
}

impl ScaleSweepPoint {
    /// One self-describing JSON object for this point (no trailing
    /// newline), used both for the `scale_sweep` bench-history suite and
    /// the `--metrics` sink of the `million_clients` example.
    pub fn json_object(&self) -> String {
        fn opt(bytes: Option<u64>) -> String {
            bytes.map_or_else(|| "null".to_string(), |b| b.to_string())
        }
        let stages: Vec<String> = self
            .stage_ns
            .iter()
            .map(|(name, ns)| format!("\"{name}\":{ns}"))
            .collect();
        format!(
            "{{\"population\":{},\"cohort\":{},\"rounds\":{},\"rounds_per_sec\":{:.2},\"resident_clients\":{},\"current_rss_bytes\":{},\"peak_rss_bytes\":{},\"stage_ns\":{{{}}}}}",
            self.population,
            self.cohort,
            self.rounds,
            self.rounds_per_sec,
            self.resident_clients,
            opt(self.current_rss_bytes),
            opt(self.peak_rss_bytes),
            stages.join(",")
        )
    }
}

/// Runs one sweep point: `rounds` cohort rounds over a lazily materialized
/// population of `num_clients` writers.
pub fn run_point(config: &ScaleSweepConfig, num_clients: usize) -> ScaleSweepPoint {
    assert!(config.cohort > 0, "cohort must be positive");
    assert!(config.rounds > 0, "need at least one round");
    let source = LazySyntheticFemnist::new(
        config.dataset_config(num_clients),
        config.seed ^ (num_clients as u64).rotate_left(17),
    );
    let model = LinearSoftmax::new(config.feature_dim, config.num_classes);
    let mut sim = Simulation::with_source(
        Box::new(model),
        Box::new(source),
        Box::new(FabTopK::new()),
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: config.batch_size,
            time_model: TimeModel::normalized(5.0),
            seed: config.seed,
            parallelism: Parallelism::Serial,
            wire: None,
            fault: None,
            cohort: Some(config.cohort),
        },
    );
    let k = config.k.clamp(1, sim.dim());
    // The round engine's recorder supplies the per-stage breakdown; one
    // outer clock read per point covers total throughput.
    let mut rec = StageRecorder::new();
    let start = Instant::now();
    for _ in 0..config.rounds {
        rec.begin_round();
        sim.run_round_recorded(k, None, &mut rec);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let stage_ns = SpanId::ALL
        .into_iter()
        .filter_map(|id| {
            let total = rec.span_histogram(id).sum();
            (total > 0).then(|| (id.name().to_string(), total))
        })
        .collect();
    ScaleSweepPoint {
        population: num_clients,
        cohort: sim.cohort_size(),
        rounds: config.rounds,
        rounds_per_sec: config.rounds as f64 / elapsed,
        resident_clients: sim.resident_clients(),
        current_rss_bytes: mem::current_rss_bytes(),
        peak_rss_bytes: mem::peak_rss_bytes(),
        stage_ns,
    }
}

/// Runs the sweep, one point per population size.
pub fn run(config: &ScaleSweepConfig) -> ScaleSweepResult {
    assert!(
        !config.populations.is_empty(),
        "need at least one population size"
    );
    let points = config
        .populations
        .iter()
        .map(|&n| run_point(config, n))
        .collect();
    ScaleSweepResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleSweepConfig {
        ScaleSweepConfig {
            populations: vec![50, 5_000],
            cohort: 8,
            rounds: 3,
            k: 16,
            samples_per_client: 16,
            feature_dim: 12,
            num_classes: 6,
            batch_size: 4,
            seed: 3,
        }
    }

    #[test]
    fn sweep_covers_every_population_and_bounds_residency() {
        let result = run(&tiny());
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert_eq!(p.cohort, 8);
            assert!(p.rounds_per_sec > 0.0);
            // Residency is bounded by participation, never by N: at most
            // rounds · cohort clients can ever have been touched.
            assert!(p.resident_clients <= p.rounds * p.cohort, "{p:?}");
            assert!(p.resident_clients > 0, "{p:?}");
            // The recorder saw the round stages: every point carries a
            // hydration and client-pass share.
            let stage = |name: &str| p.stage_ns.iter().any(|(n, ns)| n == name && *ns > 0);
            assert!(stage("hydrate"), "{p:?}");
            assert!(stage("client_pass"), "{p:?}");
        }
    }

    #[test]
    fn cohort_clamps_to_small_populations() {
        let mut config = tiny();
        config.populations = vec![5];
        let result = run(&config);
        assert_eq!(result.points[0].cohort, 5);
    }

    #[test]
    fn render_and_history_line_carry_the_memory_columns() {
        let mut config = tiny();
        config.populations = vec![50];
        let result = run(&config);
        let table = result.render();
        assert!(table.contains("rounds/s"));
        assert!(table.contains("rss [MiB]"));
        let line = result.history_json_line(123);
        assert!(line.contains("\"suite\":\"scale_sweep\""));
        assert!(line.contains("\"unix_time\":123"));
        assert!(line.contains("\"peak_rss_bytes\":"));
        assert!(line.contains("\"stage_ns\":{\"hydrate\":"), "{line}");
        assert!(line.ends_with('\n'));
        assert!(table.contains("client_pass"), "{table}");
    }
}
