//! Fault-severity sweep: convergence under client dropout, crashes,
//! stragglers and frame corruption (a robustness companion to the paper's
//! communication-time sweeps, which assume every client answers every
//! round).
//!
//! Each severity level in [`FaultSweepConfig::severities`] is a complete
//! [`FaultModel`]; the sweep runs every level once with a **fixed** `k` and
//! once with Algorithm 3 **adapting** `k` against the byte-priced channel.
//! Because dropped clients keep their updates in the residual accumulator
//! (error feedback absorbs the loss), the interesting output is not whether
//! training survives — it always does — but how much wall-clock time and
//! final loss each severity level costs, and how many bytes retries add to
//! the wire.

use serde::{Deserialize, Serialize};

use agsfl_fl::{FaultModel, FaultTotals};

use crate::config::ExperimentConfig;
use crate::controllers::ControllerSpec;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the fault sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepConfig {
    /// Base workload; its `fault` field is overridden per sweep cell. The
    /// base must carry a `wire` spec when any severity level injects
    /// wire-dependent faults (corruption, straggling, deadlines).
    pub base: ExperimentConfig,
    /// Labelled fault severities to compare. Use `None` for the fault-free
    /// baseline row.
    pub severities: Vec<(String, Option<FaultModel>)>,
    /// Rounds per run.
    pub rounds: usize,
    /// The fixed sparsity degree, as a fraction of the model dimension.
    pub fixed_k_fraction: f64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        Self {
            base: ExperimentConfig::default(),
            severities: default_severities(),
            rounds: 120,
            fixed_k_fraction: 0.05,
        }
    }
}

/// The default severity ladder: fault-free, mild dropout, lossy transport
/// with retries, and a chaotic regime combining every fault class.
pub fn default_severities() -> Vec<(String, Option<FaultModel>)> {
    vec![
        ("none".to_string(), None),
        (
            "dropout".to_string(),
            Some(FaultModel {
                drop_prob: 0.1,
                seed: 0xD0,
                ..FaultModel::default()
            }),
        ),
        (
            "lossy".to_string(),
            Some(FaultModel {
                drop_prob: 0.05,
                corrupt_prob: 0.15,
                max_retries: 2,
                retry_backoff: 0.05,
                seed: 0xD1,
                ..FaultModel::default()
            }),
        ),
        (
            "chaos".to_string(),
            Some(FaultModel {
                drop_prob: 0.1,
                crash_prob: 0.05,
                outage_rounds: (1, 3),
                straggle_prob: 0.2,
                straggle_factor: 4.0,
                corrupt_prob: 0.15,
                max_retries: 2,
                retry_backoff: 0.05,
                seed: 0xD2,
                ..FaultModel::default()
            }),
        ),
    ]
}

/// One sweep cell: a fault severity under a fixed or adaptive `k` policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepCell {
    /// Severity label.
    pub severity: String,
    /// Final global loss.
    pub final_loss: f64,
    /// Channel-priced time the run consumed.
    pub elapsed_time: f64,
    /// Mean `k` over the last quarter of the run.
    pub tail_mean_k: f64,
    /// Accumulated fault counters over the run.
    pub totals: FaultTotals,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepResult {
    /// Fixed-`k` cells, one per severity level.
    pub fixed: Vec<FaultSweepCell>,
    /// Adaptive-`k` cells (Algorithm 3), one per severity level.
    pub adaptive: Vec<FaultSweepCell>,
}

impl FaultSweepResult {
    fn find<'a>(cells: &'a [FaultSweepCell], severity: &str) -> Option<&'a FaultSweepCell> {
        cells.iter().find(|c| c.severity == severity)
    }

    /// The fixed-`k` cell for a severity level.
    pub fn fixed_cell(&self, severity: &str) -> Option<&FaultSweepCell> {
        Self::find(&self.fixed, severity)
    }

    /// The adaptive cell for a severity level.
    pub fn adaptive_cell(&self, severity: &str) -> Option<&FaultSweepCell> {
        Self::find(&self.adaptive, severity)
    }

    fn render_table(out: &mut String, title: &str, cells: &[FaultSweepCell]) {
        out.push_str(&format!("\n{title}\n"));
        out.push_str(&format!(
            "{:>12}{:>10}{:>12}{:>10}{:>8}{:>10}{:>12}{:>10}\n",
            "severity", "loss", "time", "tail k", "lost", "retries", "rtx [B]", "min surv"
        ));
        for c in cells {
            let min_survivors = c
                .totals
                .min_survivors
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:>12}{:>10.4}{:>12.1}{:>10.0}{:>8}{:>10}{:>12}{:>10}\n",
                c.severity,
                c.final_loss,
                c.elapsed_time,
                c.tail_mean_k,
                c.totals.lost(),
                c.totals.retries,
                c.totals.retransmitted_bytes,
                min_survivors
            ));
        }
    }

    /// Renders both tables.
    pub fn render(&self) -> String {
        let mut out = String::from("Fault severity sweep (survivor-only aggregation)\n");
        Self::render_table(&mut out, "Fixed k", &self.fixed);
        Self::render_table(&mut out, "Adaptive k (Algorithm 3)", &self.adaptive);
        out
    }
}

fn run_cell(
    config: &FaultSweepConfig,
    label: &str,
    fault: Option<FaultModel>,
    adaptive: bool,
) -> FaultSweepCell {
    let experiment_config = ExperimentConfig {
        fault,
        ..config.base.clone()
    };
    let mut experiment = Experiment::new(&experiment_config);
    let stop = StopCondition::after_rounds(config.rounds);
    let history = if adaptive {
        experiment.run_adaptive(ControllerSpec::Algorithm3, &stop)
    } else {
        let k = ((experiment.dim() as f64 * config.fixed_k_fraction) as usize).max(1);
        experiment.run_fixed_k(k, &stop)
    };
    let ks = history.k_sequence();
    let tail_len = (ks.len() / 4).max(1).min(ks.len());
    let tail = &ks[ks.len() - tail_len..];
    FaultSweepCell {
        severity: label.to_string(),
        final_loss: history.final_global_loss().unwrap_or(f64::NAN),
        elapsed_time: history
            .points()
            .last()
            .map(|p| p.elapsed_time)
            .unwrap_or(0.0),
        tail_mean_k: tail.iter().sum::<usize>() as f64 / tail.len().max(1) as f64,
        totals: *history.fault_totals(),
    }
}

/// Runs the sweep.
pub fn run(config: &FaultSweepConfig) -> FaultSweepResult {
    assert!(!config.severities.is_empty(), "need at least one severity");
    let mut fixed = Vec::new();
    let mut adaptive = Vec::new();
    for (label, fault) in &config.severities {
        fixed.push(run_cell(config, label, fault.clone(), false));
        adaptive.push(run_cell(config, label, fault.clone(), true));
    }
    FaultSweepResult { fixed, adaptive }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelSpec, DatasetSpec, ModelSpec, WireSpec};
    use agsfl_wire::CodecSpec;

    fn tiny_sweep() -> FaultSweepConfig {
        FaultSweepConfig {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .eval_every(10)
                .wire(WireSpec {
                    codec: CodecSpec::Auto,
                    channel: ChannelSpec::uniform(2_000.0, 8_000.0, 0.05),
                })
                .seed(29)
                .build(),
            severities: default_severities(),
            rounds: 20,
            fixed_k_fraction: 0.05,
        }
    }

    #[test]
    fn sweep_covers_every_severity_and_counts_faults() {
        let result = run(&tiny_sweep());
        assert_eq!(result.fixed.len(), 4);
        assert_eq!(result.adaptive.len(), 4);
        for cell in result.fixed.iter().chain(result.adaptive.iter()) {
            assert!(cell.final_loss.is_finite(), "{cell:?}");
            assert!(cell.elapsed_time > 0.0, "{cell:?}");
        }
        // The fault-free baseline records nothing.
        let none = result.fixed_cell("none").unwrap();
        assert_eq!(none.totals, FaultTotals::default());
        // Chaos injects every fault class at probabilities high enough that
        // 20 rounds x 8 clients cannot stay clean.
        let chaos = result.fixed_cell("chaos").unwrap();
        assert!(chaos.totals.lost() > 0, "{:?}", chaos.totals);
        assert!(chaos.totals.stragglers > 0, "{:?}", chaos.totals);
        assert!(chaos.totals.min_survivors.is_some());
    }

    #[test]
    fn retries_add_retransmitted_bytes_under_corruption() {
        let result = run(&tiny_sweep());
        let lossy = result.fixed_cell("lossy").unwrap();
        assert!(lossy.totals.corrupt_frames > 0, "{:?}", lossy.totals);
        assert!(lossy.totals.retries > 0, "{:?}", lossy.totals);
        assert!(lossy.totals.retransmitted_bytes > 0, "{:?}", lossy.totals);
    }

    #[test]
    fn faults_never_abort_a_run() {
        // Every severity completes the full round budget: survivor-only
        // aggregation plus error feedback keeps the loop alive even when
        // whole cohorts go dark.
        let cfg = tiny_sweep();
        let result = run(&cfg);
        for cell in result.fixed.iter().chain(result.adaptive.iter()) {
            assert!(cell.tail_mean_k >= 1.0, "{cell:?}");
        }
    }

    #[test]
    fn render_lists_both_tables() {
        let mut cfg = tiny_sweep();
        cfg.rounds = 6;
        cfg.severities = vec![
            ("none".into(), None),
            ("chaos".into(), default_severities()[3].1.clone()),
        ];
        let result = run(&cfg);
        let text = result.render();
        assert!(text.contains("Fixed k"));
        assert!(text.contains("Adaptive k"));
        assert!(text.contains("chaos"));
        assert!(text.contains("min surv"));
    }
}
