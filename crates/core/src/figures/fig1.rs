//! Fig. 1: empirical validation of Assumption 1 (independent costs).
//!
//! The paper trains with different sparsity degrees `k'` until the global
//! loss reaches a threshold `ψ`, then switches every run to the *same*
//! `k` and observes that the loss trajectories after the switch coincide —
//! i.e. the future progression depends on the current loss, not on how the
//! model got there.

use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the Fig. 1 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Config {
    /// Base workload (dataset, model, learning rate, communication time).
    pub base: ExperimentConfig,
    /// The sparsity degrees (as fractions of `D`) used *before* the loss
    /// reaches `ψ`. The paper uses `{D, 10000, 5000, 1000}` out of
    /// `D > 400,000`.
    pub initial_k_fractions: Vec<f64>,
    /// The common sparsity degree (fraction of `D`) used *after* reaching
    /// `ψ`. The paper uses `k = 1000`.
    pub k_after_fraction: f64,
    /// The loss threshold `ψ` at which every run switches to the common `k`,
    /// expressed as a fraction of the initial global loss (the paper uses
    /// absolute thresholds 1.5 and 1.0 for a loss starting near `ln 62`).
    pub psi_fraction_of_initial: f64,
    /// Safety cap on phase-1 rounds.
    pub max_rounds_phase1: usize,
    /// Number of rounds recorded after the switch.
    pub rounds_phase2: usize,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self {
            base: ExperimentConfig {
                eval_every: 1,
                ..ExperimentConfig::default()
            },
            initial_k_fractions: vec![1.0, 0.25, 0.05, 0.01],
            k_after_fraction: 0.01,
            psi_fraction_of_initial: 0.9,
            max_rounds_phase1: 400,
            rounds_phase2: 60,
        }
    }
}

/// One curve of Fig. 1: the phase-2 loss trajectory of a run that used
/// `initial_k` before reaching `ψ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Curve {
    /// The sparsity degree used in phase 1.
    pub initial_k: usize,
    /// Number of rounds phase 1 needed to reach `ψ`.
    pub rounds_to_psi: usize,
    /// The global loss at the switch point.
    pub loss_at_switch: f64,
    /// Global loss after each phase-2 round (all runs use the same `k`).
    pub phase2_losses: Vec<f64>,
}

/// The result of the Fig. 1 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// The loss threshold `ψ` used.
    pub psi: f64,
    /// The common phase-2 sparsity degree.
    pub k_after: usize,
    /// One curve per initial `k`.
    pub curves: Vec<Fig1Curve>,
}

impl Fig1Result {
    /// The largest absolute difference between any two phase-2 curves at the
    /// same round index — Assumption 1 predicts this stays small.
    pub fn max_divergence(&self) -> f64 {
        let mut worst = 0.0f64;
        let len = self
            .curves
            .iter()
            .map(|c| c.phase2_losses.len())
            .min()
            .unwrap_or(0);
        for i in 0..len {
            let values: Vec<f64> = self.curves.iter().map(|c| c.phase2_losses[i]).collect();
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            worst = worst.max(max - min);
        }
        worst
    }

    /// Mean loss decrease over phase 2 (averaged over curves), used to put
    /// [`Fig1Result::max_divergence`] into perspective.
    pub fn mean_phase2_decrease(&self) -> f64 {
        if self.curves.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .curves
            .iter()
            .filter_map(|c| Some(c.phase2_losses.first()? - c.phase2_losses.last()?))
            .sum();
        total / self.curves.len() as f64
    }

    /// Renders the curves as a text table (rows = phase-2 round, columns =
    /// initial `k`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 1 — Assumption 1 validation (psi = {:.3}, k after switch = {})\n",
            self.psi, self.k_after
        ));
        out.push_str(&format!("{:>8}", "round"));
        for c in &self.curves {
            out.push_str(&format!("  k1={:>10}", c.initial_k));
        }
        out.push('\n');
        let len = self
            .curves
            .iter()
            .map(|c| c.phase2_losses.len())
            .min()
            .unwrap_or(0);
        let step = (len / 15).max(1);
        let mut i = 0;
        while i < len {
            out.push_str(&format!("{:>8}", i + 1));
            for c in &self.curves {
                out.push_str(&format!("  {:>13.4}", c.phase2_losses[i]));
            }
            out.push('\n');
            i += step;
        }
        out.push_str(&format!(
            "max divergence between curves: {:.4} (mean phase-2 loss decrease: {:.4})\n",
            self.max_divergence(),
            self.mean_phase2_decrease()
        ));
        out
    }
}

/// Runs the Fig. 1 experiment.
pub fn run(config: &Fig1Config) -> Fig1Result {
    assert!(
        !config.initial_k_fractions.is_empty(),
        "need at least one initial k"
    );
    let mut curves = Vec::new();
    let mut psi_used = 0.0;
    let mut k_after_used = 0;
    for &fraction in &config.initial_k_fractions {
        let mut experiment = Experiment::new(&config.base);
        let dim = experiment.dim();
        let initial_k = ((dim as f64 * fraction).round() as usize).clamp(1, dim);
        let k_after = ((dim as f64 * config.k_after_fraction).round() as usize).clamp(1, dim);
        k_after_used = k_after;
        let initial_loss = experiment.simulation().global_train_loss();
        let psi = initial_loss * config.psi_fraction_of_initial;
        psi_used = psi;

        // Phase 1: train with this run's own k until the loss reaches psi.
        let phase1 = experiment.run_fixed_k(
            initial_k,
            &StopCondition::until_loss(psi, config.max_rounds_phase1),
        );
        let rounds_to_psi = phase1.len();
        let loss_at_switch = phase1.final_global_loss().unwrap_or(initial_loss);

        // Phase 2: every run switches to the same k and records the loss per
        // round.
        let phase2 =
            experiment.run_fixed_k(k_after, &StopCondition::after_rounds(config.rounds_phase2));
        let phase2_losses: Vec<f64> = phase2
            .points()
            .iter()
            .filter_map(|p| p.global_loss)
            .collect();
        curves.push(Fig1Curve {
            initial_k,
            rounds_to_psi,
            loss_at_switch,
            phase2_losses,
        });
    }
    Fig1Result {
        psi: psi_used,
        k_after: k_after_used,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config() -> Fig1Config {
        Fig1Config {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .comm_time(1.0)
                .eval_every(1)
                .seed(3)
                .build(),
            initial_k_fractions: vec![1.0, 0.1],
            k_after_fraction: 0.1,
            psi_fraction_of_initial: 0.95,
            max_rounds_phase1: 120,
            rounds_phase2: 20,
        }
    }

    #[test]
    fn produces_one_curve_per_initial_k() {
        let result = run(&tiny_config());
        assert_eq!(result.curves.len(), 2);
        for curve in &result.curves {
            assert!(!curve.phase2_losses.is_empty());
            assert!(curve.rounds_to_psi >= 1);
            assert!(curve.loss_at_switch.is_finite());
        }
    }

    #[test]
    fn curves_after_switch_stay_close() {
        // This is the actual claim of Assumption 1: the divergence between
        // phase-2 curves is small relative to the loss progress made.
        let result = run(&tiny_config());
        let divergence = result.max_divergence();
        let scale = result
            .curves
            .iter()
            .map(|c| c.loss_at_switch)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            divergence < scale * 0.25,
            "divergence {divergence} too large relative to loss {scale}"
        );
    }

    #[test]
    fn render_mentions_every_initial_k() {
        let result = run(&tiny_config());
        let text = result.render();
        for curve in &result.curves {
            assert!(text.contains(&curve.initial_k.to_string()));
        }
        assert!(text.contains("max divergence"));
    }
}
