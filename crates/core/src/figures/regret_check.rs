//! Empirical check of the regret bounds (Theorems 1 and 2).
//!
//! Not a figure in the paper, but the paper's two theorems are quantitative
//! claims; this experiment verifies them on synthetic convex cost sequences
//! that satisfy Assumption 2, for both exact and noisy derivative signs.

use agsfl_online::regret::{
    run_sign_ogd_exact, run_sign_ogd_noisy, RegretOutcome, SyntheticCostEnv,
};
use agsfl_online::SearchInterval;
use serde::{Deserialize, Serialize};

/// Configuration of the regret-bound check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegretCheckConfig {
    /// Number of online-learning rounds `M`.
    pub rounds: usize,
    /// The hidden optimizer `k*` of the synthetic cost sequence.
    pub k_star: f64,
    /// Search interval lower bound.
    pub k_min: f64,
    /// Search interval upper bound.
    pub k_max: f64,
    /// Initial `k`.
    pub initial_k: f64,
    /// Sign flip probability of the noisy oracle (Theorem 2); `H = 1/(1−2p)`.
    pub flip_prob: f64,
    /// Seed for the synthetic environment and the noisy oracle.
    pub seed: u64,
}

impl Default for RegretCheckConfig {
    fn default() -> Self {
        Self {
            rounds: 5_000,
            k_star: 900.0,
            k_min: 1.0,
            k_max: 4_001.0,
            initial_k: 3_500.0,
            flip_prob: 0.2,
            seed: 17,
        }
    }
}

/// The outcome of the regret-bound check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretCheckResult {
    /// Regret trajectory with exact signs, plus Theorem 1's bound.
    pub exact: RegretOutcome,
    /// Regret trajectory with noisy signs, plus Theorem 2's bound.
    pub noisy: RegretOutcome,
}

impl RegretCheckResult {
    /// `true` if both trajectories respect their bounds in every round.
    pub fn bounds_hold(&self) -> bool {
        self.exact.within_bound() && self.noisy.within_bound()
    }

    /// Renders the final regrets against the bounds and a few intermediate
    /// checkpoints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Regret bounds (Theorems 1 and 2) on a synthetic convex cost sequence\n");
        out.push_str(&format!(
            "{:>10}{:>18}{:>18}{:>18}{:>18}\n",
            "round", "regret (exact)", "bound (Thm 1)", "regret (noisy)", "bound (Thm 2)"
        ));
        let m = self.exact.cumulative_regret.len();
        for checkpoint in [m / 100, m / 10, m / 2, m] {
            let i = checkpoint.max(1) - 1;
            out.push_str(&format!(
                "{:>10}{:>18.1}{:>18.1}{:>18.1}{:>18.1}\n",
                i + 1,
                self.exact.cumulative_regret[i],
                self.exact.bound[i],
                self.noisy.cumulative_regret[i],
                self.noisy.bound[i]
            ));
        }
        out.push_str(&format!(
            "average regret per round at M: exact = {:.4}, noisy = {:.4}\n",
            self.exact.average_regret(),
            self.noisy.average_regret()
        ));
        out.push_str(&format!("bounds hold: {}\n", self.bounds_hold()));
        out
    }
}

/// Runs the regret-bound check.
pub fn run(config: &RegretCheckConfig) -> RegretCheckResult {
    let env = SyntheticCostEnv::generate(config.rounds, config.k_star, 0.3, 1.2, config.seed);
    let interval = SearchInterval::new(config.k_min, config.k_max);
    let exact = run_sign_ogd_exact(&env, interval, config.initial_k);
    let noisy = run_sign_ogd_noisy(
        &env,
        interval,
        config.initial_k,
        config.flip_prob,
        config.seed ^ 0xBEEF,
    );
    RegretCheckResult { exact, noisy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_check_satisfies_both_bounds() {
        let result = run(&RegretCheckConfig {
            rounds: 1_500,
            ..RegretCheckConfig::default()
        });
        assert!(result.bounds_hold());
    }

    #[test]
    fn average_regret_decays() {
        let result = run(&RegretCheckConfig {
            rounds: 2_000,
            ..RegretCheckConfig::default()
        });
        let early = result.exact.cumulative_regret[199] / 200.0;
        assert!(result.exact.average_regret() < early);
    }

    #[test]
    fn render_reports_bounds() {
        let result = run(&RegretCheckConfig {
            rounds: 500,
            ..RegretCheckConfig::default()
        });
        let text = result.render();
        assert!(text.contains("Thm 1"));
        assert!(text.contains("bounds hold: true"));
    }
}
