//! Fig. 5: comparison of online-learning methods for adapting `k`.
//!
//! At a communication time of 10, the paper compares its Algorithm 3 against
//! value-based derivative descent, EXP3 and the continuous bandit, reporting
//! loss and accuracy versus normalized time and the trajectories of `k_m`.

use agsfl_fl::RunHistory;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::controllers::ControllerSpec;
use crate::report;
use crate::runner::{Experiment, StopCondition};

/// Configuration of the Fig. 5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Base workload (communication time 10 in the paper).
    pub base: ExperimentConfig,
    /// Normalized time budget per method.
    pub max_time: f64,
    /// The adaptive methods to compare; defaults to the paper's Fig. 5
    /// lineup.
    pub controllers: Vec<ControllerSpec>,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            base: ExperimentConfig::default(),
            max_time: 1_500.0,
            controllers: ControllerSpec::fig5_lineup().to_vec(),
        }
    }
}

/// The result of the Fig. 5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// One history per adaptive method (same order as the config).
    pub histories: Vec<RunHistory>,
}

impl Fig5Result {
    /// The history of a method by label.
    pub fn history(&self, label: &str) -> Option<&RunHistory> {
        self.histories.iter().find(|h| h.label == label)
    }

    /// The stability of each method's `k` trajectory measured as the spread
    /// (max − min) of `k` over the last `window` rounds.
    pub fn k_spread(&self, window: usize) -> Vec<(String, f64)> {
        self.histories
            .iter()
            .map(|h| {
                let ks = h.k_sequence();
                let tail = &ks[ks.len().saturating_sub(window)..];
                let max = tail.iter().copied().max().unwrap_or(0) as f64;
                let min = tail.iter().copied().min().unwrap_or(0) as f64;
                (h.label.clone(), max - min)
            })
            .collect()
    }

    /// Final global loss per method.
    pub fn final_losses(&self) -> Vec<(String, f64)> {
        self.histories
            .iter()
            .map(|h| (h.label.clone(), h.final_global_loss().unwrap_or(f64::NAN)))
            .collect()
    }

    /// Renders loss/accuracy tables and sub-sampled `k_m` trajectories.
    pub fn render(&self, max_time: f64) -> String {
        let refs: Vec<&RunHistory> = self.histories.iter().collect();
        let times = report::sample_times(max_time, 10);
        let mut out = String::new();
        out.push_str("Fig. 5 — adaptive-k methods (communication time 10)\n");
        out.push_str("\nGlobal loss vs normalized time\n");
        out.push_str(&report::loss_table(&refs, &times));
        out.push_str("\nTest accuracy vs normalized time\n");
        out.push_str(&report::accuracy_table(&refs, &times));
        out.push_str("\nk_m trajectories\n");
        out.push_str(&report::k_trajectory_table(&refs, 15));
        out
    }
}

/// Runs the Fig. 5 experiment.
pub fn run(config: &Fig5Config) -> Fig5Result {
    let stop = StopCondition::after_time(config.max_time);
    let histories = config
        .controllers
        .iter()
        .map(|spec| {
            let mut experiment = Experiment::new(&config.base);
            let mut history = experiment.run_adaptive(*spec, &stop);
            history.label = spec.name().to_string();
            history
        })
        .collect();
    Fig5Result { histories }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config() -> Fig5Config {
        Fig5Config {
            base: ExperimentConfig::builder()
                .dataset(DatasetSpec::femnist_tiny())
                .model(ModelSpec::Linear)
                .learning_rate(0.05)
                .batch_size(8)
                .comm_time(10.0)
                .eval_every(5)
                .seed(2)
                .build(),
            max_time: 120.0,
            controllers: ControllerSpec::fig5_lineup().to_vec(),
        }
    }

    #[test]
    fn produces_one_history_per_controller() {
        let result = run(&tiny_config());
        assert_eq!(result.histories.len(), 4);
        for h in &result.histories {
            assert!(!h.is_empty(), "{} produced no rounds", h.label);
        }
        assert!(result.history("Proposed (Algorithm 3)").is_some());
        assert!(result.history("EXP3").is_some());
    }

    #[test]
    fn proposed_method_k_is_more_stable_than_exp3() {
        let result = run(&tiny_config());
        let spreads = result.k_spread(20);
        let get = |label: &str| {
            spreads
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!(
            get("Proposed (Algorithm 3)") <= get("EXP3"),
            "spreads {spreads:?}"
        );
    }

    #[test]
    fn render_lists_all_methods() {
        let cfg = tiny_config();
        let result = run(&cfg);
        let text = result.render(cfg.max_time);
        for spec in &cfg.controllers {
            assert!(text.contains(&spec.name()[..10.min(spec.name().len())]));
        }
    }
}
