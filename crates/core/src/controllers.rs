//! Adaptive-`k` controller specifications.

use agsfl_online::{
    BanditController, ContinuousBandit, Exp3, Exp3Controller, ExtendedConfig, ExtendedSignOgd,
    FixedK, KController, SearchInterval, SignOgd, ValueBasedDescent,
};
use serde::{Deserialize, Serialize};

/// Which method chooses the sparsity degree `k` over the course of a run.
///
/// The variants correspond to the methods compared in Fig. 5 and Fig. 6 of
/// the paper, plus the fixed-`k` baseline used by Fig. 1 and Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// A fixed sparsity degree.
    Fixed(f64),
    /// Algorithm 2: sign-of-derivative online gradient descent.
    Algorithm2,
    /// Algorithm 3: Algorithm 2 with shrinking search intervals (the paper's
    /// recommended method).
    Algorithm3,
    /// Value-based derivative descent (baseline).
    ValueBased,
    /// EXP3 multi-armed bandit over a geometric grid of `k` values
    /// (baseline).
    Exp3 {
        /// Number of arms in the geometric grid.
        num_arms: usize,
    },
    /// Continuous one-point bandit (baseline).
    ContinuousBandit,
}

impl ControllerSpec {
    /// Human-readable name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Fixed(_) => "Fixed k",
            Self::Algorithm2 => "Algorithm 2",
            Self::Algorithm3 => "Proposed (Algorithm 3)",
            Self::ValueBased => "Value-based gradient/derivative descent",
            Self::Exp3 { .. } => "EXP3",
            Self::ContinuousBandit => "Continuous bandit",
        }
    }

    /// The adaptive methods compared in Fig. 5, in the paper's order
    /// (the proposed method first).
    pub fn fig5_lineup() -> [ControllerSpec; 4] {
        [
            Self::Algorithm3,
            Self::ValueBased,
            Self::Exp3 { num_arms: 16 },
            Self::ContinuousBandit,
        ]
    }

    /// Builds the controller for a model of dimension `dim`.
    ///
    /// The search range follows the paper's Section V-B settings:
    /// `kmin = 0.002·D`, `kmax = D`, `α = 1.5`, `Mu = 20`; the baselines use
    /// the same range. The initial `k` is `D/2` for all methods.
    pub fn build(&self, dim: usize, seed: u64) -> Box<dyn KController> {
        let d = dim as f64;
        let k_min = (0.002 * d).max(1.0);
        let k_max = d;
        let initial = d / 2.0;
        let interval = SearchInterval::new(k_min, k_max);
        match self {
            Self::Fixed(k) => Box::new(FixedK::new(k.clamp(1.0, d))),
            Self::Algorithm2 => Box::new(SignOgd::new(interval, initial)),
            Self::Algorithm3 => Box::new(ExtendedSignOgd::new(ExtendedConfig {
                k_min,
                k_max,
                alpha: 1.5,
                update_window: 20,
                initial_k: initial,
            })),
            Self::ValueBased => Box::new(ValueBasedDescent::new(interval, initial)),
            Self::Exp3 { num_arms } => {
                let arms = Exp3::geometric_arms(k_min, k_max, (*num_arms).max(2));
                Box::new(Exp3Controller::new(Exp3::new(arms, 0.1, seed)))
            }
            Self::ContinuousBandit => Box::new(BanditController::new(
                ContinuousBandit::with_default_scales(interval, initial, seed),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_controllers_with_valid_initial_k() {
        let dim = 5_000usize;
        for spec in [
            ControllerSpec::Fixed(100.0),
            ControllerSpec::Algorithm2,
            ControllerSpec::Algorithm3,
            ControllerSpec::ValueBased,
            ControllerSpec::Exp3 { num_arms: 8 },
            ControllerSpec::ContinuousBandit,
        ] {
            let controller = spec.build(dim, 7);
            let k = controller.propose_k();
            assert!(
                (1.0..=dim as f64).contains(&k),
                "{}: initial k {k} out of range",
                controller.name()
            );
        }
    }

    #[test]
    fn fixed_is_clamped_to_dimension() {
        let controller = ControllerSpec::Fixed(1e9).build(100, 0);
        assert_eq!(controller.propose_k(), 100.0);
    }

    #[test]
    fn fig5_lineup_starts_with_proposed_method() {
        let lineup = ControllerSpec::fig5_lineup();
        assert_eq!(lineup[0], ControllerSpec::Algorithm3);
        assert_eq!(lineup.len(), 4);
    }

    #[test]
    fn sign_controllers_request_probes_bandits_do_not() {
        let dim = 2_000;
        assert!(ControllerSpec::Algorithm3.build(dim, 0).probe_k().is_some());
        assert!(ControllerSpec::Algorithm2.build(dim, 0).probe_k().is_some());
        assert!(ControllerSpec::ValueBased.build(dim, 0).probe_k().is_some());
        assert!(ControllerSpec::Exp3 { num_arms: 4 }
            .build(dim, 0)
            .probe_k()
            .is_none());
        assert!(ControllerSpec::ContinuousBandit
            .build(dim, 0)
            .probe_k()
            .is_none());
        assert!(ControllerSpec::Fixed(10.0)
            .build(dim, 0)
            .probe_k()
            .is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = [
            ControllerSpec::Algorithm2,
            ControllerSpec::Algorithm3,
            ControllerSpec::ValueBased,
            ControllerSpec::Exp3 { num_arms: 4 },
            ControllerSpec::ContinuousBandit,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
