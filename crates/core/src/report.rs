//! Plain-text rendering of experiment results.
//!
//! The paper presents its results as figures; this reproduction regenerates
//! the underlying *series* and prints them as aligned text tables so the
//! shapes (who wins, by how much, where curves cross) can be read directly
//! from the benchmark output and recorded in `EXPERIMENTS.md`.

use agsfl_fl::RunHistory;
use agsfl_telemetry::{CounterId, GaugeId, Histogram, SpanId, StageRecorder};

/// Formats a `(time, value)` series sampled at the given time points from a
/// set of labelled histories, using the global-loss channel.
pub fn loss_table(histories: &[&RunHistory], times: &[f64]) -> String {
    sampled_table(histories, times, |h, t| h.loss_at_time(t))
}

/// Formats a `(time, value)` series sampled at the given time points from a
/// set of labelled histories, using the test-accuracy channel.
pub fn accuracy_table(histories: &[&RunHistory], times: &[f64]) -> String {
    sampled_table(histories, times, |h, t| h.accuracy_at_time(t))
}

fn sampled_table(
    histories: &[&RunHistory],
    times: &[f64],
    sample: impl Fn(&RunHistory, f64) -> Option<f64>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>12}", "time"));
    for h in histories {
        out.push_str(&format!("  {:>24}", truncate(&h.label, 24)));
    }
    out.push('\n');
    for &t in times {
        out.push_str(&format!("{t:>12.1}"));
        for h in histories {
            match sample(h, t) {
                Some(v) => out.push_str(&format!("  {v:>24.4}")),
                None => out.push_str(&format!("  {:>24}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Formats the `k_m` trajectory of each history, sub-sampled to at most
/// `max_rows` rows.
pub fn k_trajectory_table(histories: &[&RunHistory], max_rows: usize) -> String {
    let longest = histories.iter().map(|h| h.len()).max().unwrap_or(0);
    let step = (longest / max_rows.max(1)).max(1);
    let mut out = String::new();
    out.push_str(&format!("{:>10}", "round"));
    for h in histories {
        out.push_str(&format!("  {:>24}", truncate(&h.label, 24)));
    }
    out.push('\n');
    let mut round = 0usize;
    while round < longest {
        out.push_str(&format!("{:>10}", round + 1));
        for h in histories {
            match h.points().get(round) {
                Some(p) => out.push_str(&format!("  {:>24}", p.k)),
                None => out.push_str(&format!("  {:>24}", "-")),
            }
        }
        out.push('\n');
        round += step;
    }
    out
}

/// Formats the per-client contribution CDFs of the given histories at a fixed
/// set of quantiles (the data behind Fig. 4, right panel).
pub fn contribution_summary(histories: &[&RunHistory]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26}{:>14}{:>14}{:>14}{:>18}\n",
        "method", "min", "median", "max", "clients with 0"
    ));
    for h in histories {
        let cdf = h.contribution_cdf();
        let zero_fraction = cdf.eval(0.0);
        out.push_str(&format!(
            "{:<26}{:>14.0}{:>14.0}{:>14.0}{:>17.1}%\n",
            truncate(&h.label, 26),
            cdf.quantile(0.0).unwrap_or(0.0),
            cdf.quantile(0.5).unwrap_or(0.0),
            cdf.quantile(1.0).unwrap_or(0.0),
            zero_fraction * 100.0
        ));
    }
    out
}

/// Formats the accumulated fault counters of the given histories: uploads
/// lost per fault class, retry overhead on the wire, and the smallest
/// cohort the server ever aggregated over.
pub fn fault_summary(histories: &[&RunHistory]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26}{:>8}{:>10}{:>8}{:>8}{:>10}{:>12}{:>10}\n",
        "method", "lost", "offline", "corrupt", "ddl", "retries", "rtx [B]", "min surv"
    ));
    for h in histories {
        let t = h.fault_totals();
        let min_survivors = t
            .min_survivors
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<26}{:>8}{:>10}{:>8}{:>8}{:>10}{:>12}{:>10}\n",
            truncate(&h.label, 26),
            t.lost(),
            t.offline,
            t.corrupt_lost,
            t.deadline_dropped,
            t.retries,
            t.retransmitted_bytes,
            min_survivors
        ));
    }
    out
}

/// Formats the cumulative telemetry of a run: one row per observed stage
/// span (count, p50/p95/p99 and total wall time), followed by the non-zero
/// counters and gauge peaks. Pass the executor's drained dispatch-latency
/// histogram (if the pool set was on) to append it as an extra row.
///
/// Quantiles come from the log-bucketed [`Histogram`], so they are bucket
/// lower bounds — stable summaries, not exact order statistics.
pub fn telemetry_summary(rec: &StageRecorder, dispatch: Option<&Histogram>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18}{:>10}{:>14}{:>14}{:>14}{:>16}\n",
        "span", "count", "p50 [us]", "p95 [us]", "p99 [us]", "total [ms]"
    ));
    let span_row = |out: &mut String, name: &str, h: &Histogram| {
        let us = |q: Option<u64>| q.unwrap_or(0) as f64 / 1_000.0;
        out.push_str(&format!(
            "{:<18}{:>10}{:>14.1}{:>14.1}{:>14.1}{:>16.2}\n",
            truncate(name, 18),
            h.count(),
            us(h.p50()),
            us(h.p95()),
            us(h.p99()),
            h.sum() as f64 / 1_000_000.0,
        ));
    };
    for id in SpanId::ALL {
        let h = rec.span_histogram(id);
        if !h.is_empty() {
            span_row(&mut out, id.name(), h);
        }
    }
    if let Some(h) = dispatch {
        if !h.is_empty() {
            span_row(&mut out, "pool_dispatch", h);
        }
    }
    let mut counters = String::new();
    for id in CounterId::ALL {
        let total = rec.counter_total(id);
        if total > 0 {
            counters.push_str(&format!("{:<26}{total:>16}\n", truncate(id.name(), 26)));
        }
    }
    if !counters.is_empty() {
        out.push_str(&format!("\n{:<26}{:>16}\n", "counter", "total"));
        out.push_str(&counters);
    }
    let mut gauges = String::new();
    for id in GaugeId::ALL {
        let peak = rec.gauge_peak(id);
        if peak > 0 {
            gauges.push_str(&format!(
                "{:<26}{:>16}{:>16}\n",
                truncate(id.name(), 26),
                rec.gauge_value(id),
                peak
            ));
        }
    }
    if !gauges.is_empty() {
        out.push_str(&format!("\n{:<26}{:>16}{:>16}\n", "gauge", "last", "peak"));
        out.push_str(&gauges);
    }
    out
}

/// Evenly spaced sample times from 0 to `max_time` (inclusive) with `steps`
/// intervals.
pub fn sample_times(max_time: f64, steps: usize) -> Vec<f64> {
    let steps = steps.max(1);
    (1..=steps)
        .map(|i| max_time * i as f64 / steps as f64)
        .collect()
}

fn truncate(s: &str, width: usize) -> String {
    if s.len() <= width {
        s.to_string()
    } else {
        s.chars().take(width).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_fl::MetricPoint;

    fn history(label: &str, losses: &[(f64, f64)]) -> RunHistory {
        let mut h = RunHistory::new(label, 2);
        for (i, &(t, l)) in losses.iter().enumerate() {
            h.push(MetricPoint {
                round: i + 1,
                elapsed_time: t,
                k: 5 + i,
                train_loss: l,
                global_loss: Some(l),
                test_accuracy: Some(1.0 - l / 10.0),
            });
        }
        h.add_contributions(&[3, 0]);
        h
    }

    #[test]
    fn loss_table_contains_labels_and_values() {
        let a = history("method-a", &[(1.0, 4.0), (2.0, 3.0)]);
        let b = history("method-b", &[(1.0, 5.0), (2.0, 2.0)]);
        let table = loss_table(&[&a, &b], &[1.0, 2.0]);
        assert!(table.contains("method-a"));
        assert!(table.contains("method-b"));
        assert!(table.contains("3.0000"));
        assert!(table.lines().count() == 3);
    }

    #[test]
    fn accuracy_table_uses_accuracy_channel() {
        let a = history("acc", &[(1.0, 4.0)]);
        let table = accuracy_table(&[&a], &[1.0]);
        assert!(table.contains("0.6000"));
    }

    #[test]
    fn missing_samples_render_as_dash() {
        let a = history("late", &[(10.0, 1.0)]);
        let table = loss_table(&[&a], &[1.0]);
        assert!(table.contains('-'));
    }

    #[test]
    fn k_trajectory_subsamples() {
        let a = history("k", &(0..50).map(|i| (i as f64, 1.0)).collect::<Vec<_>>());
        let table = k_trajectory_table(&[&a], 10);
        assert!(table.lines().count() <= 12);
        assert!(table.contains("round"));
    }

    #[test]
    fn contribution_summary_reports_zero_clients() {
        let a = history("fair", &[(1.0, 1.0)]);
        let summary = contribution_summary(&[&a]);
        assert!(summary.contains("50.0%"), "{summary}");
    }

    #[test]
    fn fault_summary_reports_totals_and_dashes_cleanly() {
        use agsfl_fl::FaultRoundReport;
        let clean = history("clean", &[(1.0, 1.0)]);
        let mut faulty = history("faulty", &[(1.0, 1.0)]);
        faulty.record_fault(&FaultRoundReport {
            offline: 1,
            dropped: 2,
            retries: 3,
            retransmitted_bytes: 512,
            survivors: 5,
            ..FaultRoundReport::default()
        });
        let table = fault_summary(&[&clean, &faulty]);
        assert!(table.contains("clean"));
        assert!(table.contains("faulty"));
        assert!(table.contains("512"), "{table}");
        assert!(table.contains('-'), "clean run has no min survivors");
    }

    #[test]
    fn sample_times_are_increasing_and_end_at_max() {
        let times = sample_times(100.0, 4);
        assert_eq!(times, vec![25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn telemetry_summary_lists_observed_spans_counters_and_gauges() {
        use agsfl_telemetry::Recorder;
        let mut rec = StageRecorder::new();
        rec.span(SpanId::ClientPass, 2_000);
        rec.span(SpanId::ClientPass, 4_000);
        rec.counter(CounterId::UplinkBytes, 1024);
        rec.gauge(GaugeId::QueueDepthPeak, 7);
        let mut dispatch = Histogram::new();
        dispatch.record(500);
        let table = telemetry_summary(&rec, Some(&dispatch));
        assert!(table.contains("client_pass"), "{table}");
        assert!(table.contains("pool_dispatch"), "{table}");
        assert!(table.contains("uplink_bytes"), "{table}");
        assert!(table.contains("1024"), "{table}");
        assert!(table.contains("queue_depth_peak"), "{table}");
        // Unobserved spans and zero counters stay out of the table.
        assert!(!table.contains("checkpoint_write"), "{table}");
        assert!(!table.contains("fault_offline"), "{table}");
    }
}
