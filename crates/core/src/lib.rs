//! High-level experiment API for the AGSFL paper reproduction.
//!
//! This crate is the paper's primary contribution packaged as a usable
//! library: federated learning with **fairness-aware bidirectional top-k
//! gradient sparsification** (FAB-top-k, Algorithm 1) whose sparsity degree
//! `k` is adapted online by the **sign-of-derivative online learning
//! algorithms** (Algorithms 2 and 3). It ties together the substrates from
//! the lower-level crates:
//!
//! * `agsfl-ml` — models, synthetic federated datasets,
//! * `agsfl-sparse` — the sparsification methods,
//! * `agsfl-fl` — the synchronized FL simulator and normalized time model,
//! * `agsfl-online` — the adaptive-`k` controllers.
//!
//! The main entry points are:
//!
//! * [`ExperimentConfig`] / [`DatasetSpec`] / [`ModelSpec`] — declarative
//!   description of a workload,
//! * [`Experiment`] — builds the simulator and runs fixed-`k`, adaptive-`k`,
//!   prescribed-`k`-sequence and FedAvg training loops, producing
//!   [`agsfl_fl::RunHistory`] time series,
//! * [`ControllerSpec`] — which adaptive-`k` method to use,
//! * [`figures`] — one function per figure of the paper's evaluation,
//!   returning the exact series the paper plots.
//!
//! # Example
//!
//! ```
//! use agsfl_core::{ControllerSpec, DatasetSpec, Experiment, ExperimentConfig, ModelSpec, SparsifierSpec, StopCondition};
//!
//! let config = ExperimentConfig::builder()
//!     .dataset(DatasetSpec::femnist_tiny())
//!     .model(ModelSpec::Linear)
//!     .comm_time(10.0)
//!     .seed(42)
//!     .build();
//! let mut experiment = Experiment::new(&config);
//! let history = experiment.run_adaptive(
//!     ControllerSpec::Algorithm3,
//!     &StopCondition::after_rounds(30),
//! );
//! assert_eq!(history.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controllers;
pub mod figures;
pub mod report;
mod runner;
pub mod telemetry;

pub use agsfl_exec::{Executor, Parallelism};
pub use agsfl_fl::{CheckpointError, FaultConfigError, FaultModel, FaultRoundReport, FaultTotals};
pub use agsfl_telemetry::{CounterId, GaugeId, Histogram, Recorder, SpanId, StageRecorder};
pub use agsfl_wire::CodecSpec;
pub use config::{
    ChannelSpec, ConfigError, DatasetSpec, ExperimentConfig, ExperimentConfigBuilder, Fluctuation,
    ModelSpec, SparsifierSpec, WireSpec,
};
pub use controllers::ControllerSpec;
pub use runner::{CheckpointSpec, Experiment, StopCondition};
pub use telemetry::{TelemetrySpec, TelemetryState};
