//! The experiment runner: drives the FL simulator with a `k` controller.

use agsfl_fl::{
    FedAvgConfig, FedAvgSimulation, MetricPoint, RunHistory, Simulation, SimulationConfig,
    TimeModel,
};
use agsfl_online::{stochastic_round, KController, RoundFeedback};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::controllers::ControllerSpec;

/// When to stop a training run.
///
/// A run stops as soon as **any** enabled criterion triggers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StopCondition {
    /// Maximum number of rounds.
    pub max_rounds: Option<usize>,
    /// Maximum cumulative normalized time.
    pub max_time: Option<f64>,
    /// Stop once the evaluated global loss drops to this value or below.
    pub target_loss: Option<f64>,
}

impl StopCondition {
    /// Stop after exactly `rounds` rounds.
    pub fn after_rounds(rounds: usize) -> Self {
        Self {
            max_rounds: Some(rounds),
            ..Self::default()
        }
    }

    /// Stop once the normalized time budget is exhausted.
    pub fn after_time(time: f64) -> Self {
        Self {
            max_time: Some(time),
            ..Self::default()
        }
    }

    /// Stop once the global loss reaches `loss` (checked at evaluation
    /// points), with `max_rounds` as a safety net.
    pub fn until_loss(loss: f64, max_rounds: usize) -> Self {
        Self {
            max_rounds: Some(max_rounds),
            target_loss: Some(loss),
            ..Self::default()
        }
    }

    /// Adds a time budget to an existing condition.
    pub fn with_max_time(mut self, time: f64) -> Self {
        self.max_time = Some(time);
        self
    }

    fn rounds_exhausted(&self, round: usize) -> bool {
        self.max_rounds.is_some_and(|m| round >= m)
    }

    fn time_exhausted(&self, elapsed: f64) -> bool {
        self.max_time.is_some_and(|t| elapsed >= t)
    }

    fn loss_reached(&self, loss: Option<f64>) -> bool {
        match (self.target_loss, loss) {
            (Some(target), Some(loss)) => loss <= target,
            _ => false,
        }
    }
}

/// A ready-to-run experiment: the FL simulator built from an
/// [`ExperimentConfig`] plus the bookkeeping needed to drive adaptive-`k`
/// controllers and produce [`RunHistory`] time series.
pub struct Experiment {
    config: ExperimentConfig,
    sim: Simulation,
    rounding_rng: ChaCha8Rng,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .field("dim", &self.sim.dim())
            .field("clients", &self.sim.num_clients())
            .finish()
    }
}

impl Experiment {
    /// Builds the experiment: generates the dataset, instantiates the model
    /// and sparsifier and wires up the simulator.
    pub fn new(config: &ExperimentConfig) -> Self {
        config.validate();
        let mut data_rng =
            ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
        let dataset = config.dataset.generate(&mut data_rng);
        let model = config
            .model
            .build(dataset.feature_dim(), dataset.num_classes());
        let wire = config
            .wire
            .as_ref()
            .map(|w| w.build(dataset.num_clients(), config.seed));
        let sim = Simulation::new(
            model,
            dataset,
            config.sparsifier.build(),
            SimulationConfig {
                learning_rate: config.learning_rate,
                batch_size: config.batch_size,
                time_model: TimeModel::normalized(config.comm_time),
                seed: config.seed,
                parallelism: config.parallelism,
                wire,
            },
        );
        Self {
            config: config.clone(),
            sim,
            rounding_rng: ChaCha8Rng::seed_from_u64(config.seed ^ 0x517C_C1B7_2722_0A95),
        }
    }

    /// Model dimension `D`.
    pub fn dim(&self) -> usize {
        self.sim.dim()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.sim.num_clients()
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Read-only access to the underlying simulation (current weights,
    /// elapsed time, …).
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Runs a fixed-`k` training loop.
    pub fn run_fixed_k(&mut self, k: usize, stop: &StopCondition) -> RunHistory {
        let mut controller = ControllerSpec::Fixed(k as f64).build(self.dim(), self.config.seed);
        self.run_with_controller(controller.as_mut(), stop, "Fixed k")
    }

    /// Runs an adaptive-`k` training loop with the given controller spec.
    pub fn run_adaptive(&mut self, spec: ControllerSpec, stop: &StopCondition) -> RunHistory {
        let mut controller = spec.build(self.dim(), self.config.seed);
        self.run_with_controller(controller.as_mut(), stop, spec.name())
    }

    /// Runs with an externally constructed controller (useful for ablations
    /// that tweak controller parameters directly).
    pub fn run_with_controller(
        &mut self,
        controller: &mut dyn KController,
        stop: &StopCondition,
        label: &str,
    ) -> RunHistory {
        let dim = self.dim();
        let mut history = RunHistory::new(label, self.num_clients());
        let mut round_in_run = 0usize;
        let start_time = self.sim.elapsed_time();
        loop {
            if stop.rounds_exhausted(round_in_run)
                || stop.time_exhausted(self.sim.elapsed_time() - start_time)
            {
                break;
            }
            round_in_run += 1;

            let k_cont = controller.propose_k().clamp(1.0, dim as f64);
            let k = stochastic_round(k_cont, &mut self.rounding_rng).min(dim);
            // Always evaluate a probe so bandit-style controllers get a
            // loss-decrease signal; sign-based controllers dictate their own
            // probe k' = k − δ/2.
            let probe_k = controller
                .probe_k()
                .map(|p| p.round().max(1.0) as usize)
                .unwrap_or(k);
            let report = self.sim.run_round(k, Some(probe_k));

            let feedback = RoundFeedback {
                k_used: report.k_used,
                round_time: report.round_time,
                probe_loss_prev: report.probe.map(|p| p.loss_prev),
                probe_loss_now: report.probe.map(|p| p.loss_now),
                probe_loss_alt: report.probe.map(|p| p.loss_probe),
                probe_round_time: report.probe.map(|p| p.probe_round_time),
                probe_k: report.probe.map(|p| p.probe_k),
                loss_decrease: None,
            };
            controller.observe(&feedback);
            history.add_contributions(&report.contributions);
            if let Some(wire) = &report.wire {
                history.record_wire(wire);
            }

            let evaluate = round_in_run.is_multiple_of(self.config.eval_every)
                || round_in_run == 1
                || stop.rounds_exhausted(round_in_run)
                || stop.time_exhausted(self.sim.elapsed_time() - start_time);
            let (global_loss, test_accuracy) = if evaluate {
                // One fused parallel sweep for both metrics (bit-identical
                // to the individual accessors; see Simulation::evaluate).
                let eval = self.sim.evaluate();
                (
                    Some(eval.train_loss as f64),
                    Some(eval.test_accuracy as f64),
                )
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round: round_in_run,
                elapsed_time: self.sim.elapsed_time() - start_time,
                k: report.k_used,
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        history
    }

    /// Runs with a prescribed sequence of `k` values (used by Figs. 7 and 8
    /// to cross-apply a `{k_m}` sequence adapted for one communication time
    /// to a system with a different communication time). If the run lasts
    /// longer than the sequence, the last value is repeated.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn run_k_sequence(&mut self, sequence: &[usize], stop: &StopCondition) -> RunHistory {
        assert!(!sequence.is_empty(), "k sequence must not be empty");
        let dim = self.dim();
        let mut history = RunHistory::new("prescribed k sequence", self.num_clients());
        let mut round_in_run = 0usize;
        let start_time = self.sim.elapsed_time();
        loop {
            if stop.rounds_exhausted(round_in_run)
                || stop.time_exhausted(self.sim.elapsed_time() - start_time)
            {
                break;
            }
            let k = sequence[round_in_run.min(sequence.len() - 1)].clamp(1, dim);
            round_in_run += 1;
            let report = self.sim.run_round(k, None);
            history.add_contributions(&report.contributions);
            if let Some(wire) = &report.wire {
                history.record_wire(wire);
            }
            let evaluate = round_in_run.is_multiple_of(self.config.eval_every) || round_in_run == 1;
            let (global_loss, test_accuracy) = if evaluate {
                // One fused parallel sweep for both metrics (bit-identical
                // to the individual accessors; see Simulation::evaluate).
                let eval = self.sim.evaluate();
                (
                    Some(eval.train_loss as f64),
                    Some(eval.test_accuracy as f64),
                )
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round: round_in_run,
                elapsed_time: self.sim.elapsed_time() - start_time,
                k: report.k_used,
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        history
    }

    /// Runs the FedAvg baseline at the communication overhead equivalent to
    /// `k`-element GS (aggregation every `⌊D/(2k)⌋` rounds), building a fresh
    /// FedAvg simulation from this experiment's configuration.
    pub fn run_fedavg(&self, k_equivalent: usize, stop: &StopCondition) -> RunHistory {
        let config = &self.config;
        let mut data_rng =
            ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
        let dataset = config.dataset.generate(&mut data_rng);
        let model = config
            .model
            .build(dataset.feature_dim(), dataset.num_classes());
        let dim = model.num_params();
        let num_clients = dataset.num_clients();
        let mut sim = FedAvgSimulation::new(
            model,
            dataset,
            FedAvgConfig {
                learning_rate: config.learning_rate,
                batch_size: config.batch_size,
                time_model: TimeModel::normalized(config.comm_time),
                aggregation_period: TimeModel::fedavg_period(dim, k_equivalent),
                seed: config.seed,
                parallelism: config.parallelism,
            },
        );
        let mut history = RunHistory::new("FedAvg", num_clients);
        let mut round = 0usize;
        loop {
            if stop.rounds_exhausted(round) || stop.time_exhausted(sim.elapsed_time()) {
                break;
            }
            round += 1;
            let report = sim.run_round();
            let evaluate = round.is_multiple_of(config.eval_every) || round == 1;
            let (global_loss, test_accuracy) = if evaluate {
                let eval = sim.evaluate();
                (Some(eval.train_loss), Some(eval.test_accuracy))
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round,
                elapsed_time: sim.elapsed_time(),
                k: if report.aggregated { dim } else { 0 },
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config(comm_time: f64, seed: u64) -> ExperimentConfig {
        ExperimentConfig::builder()
            .dataset(DatasetSpec::femnist_tiny())
            .model(ModelSpec::Linear)
            .learning_rate(0.05)
            .batch_size(8)
            .comm_time(comm_time)
            .eval_every(5)
            .seed(seed)
            .build()
    }

    #[test]
    fn stop_conditions_trigger() {
        let rounds = StopCondition::after_rounds(3);
        assert!(rounds.rounds_exhausted(3));
        assert!(!rounds.rounds_exhausted(2));
        let time = StopCondition::after_time(10.0);
        assert!(time.time_exhausted(10.0));
        assert!(!time.time_exhausted(9.9));
        let loss = StopCondition::until_loss(1.0, 100);
        assert!(loss.loss_reached(Some(0.9)));
        assert!(!loss.loss_reached(Some(1.1)));
        assert!(!loss.loss_reached(None));
    }

    #[test]
    fn fixed_k_run_respects_round_budget() {
        let mut exp = Experiment::new(&tiny_config(10.0, 0));
        let history = exp.run_fixed_k(exp.dim() / 10, &StopCondition::after_rounds(12));
        assert_eq!(history.len(), 12);
        assert!(history.points().iter().all(|p| p.k == exp.dim() / 10));
        assert!(history.final_global_loss().is_some());
    }

    #[test]
    fn time_budget_stops_run() {
        let mut exp = Experiment::new(&tiny_config(10.0, 1));
        let history = exp.run_fixed_k(
            exp.dim() / 10,
            &StopCondition::after_rounds(1000).with_max_time(50.0),
        );
        assert!(history.len() < 1000);
        let last = history.points().last().unwrap();
        assert!(last.elapsed_time >= 50.0);
    }

    #[test]
    fn adaptive_run_produces_varying_k() {
        let mut exp = Experiment::new(&tiny_config(100.0, 2));
        let history =
            exp.run_adaptive(ControllerSpec::Algorithm3, &StopCondition::after_rounds(40));
        assert_eq!(history.len(), 40);
        let ks = history.k_sequence();
        assert!(ks.iter().any(|&k| k != ks[0]), "k never changed: {ks:?}");
    }

    #[test]
    fn adaptive_run_with_high_comm_time_prefers_smaller_k() {
        let mut cheap = Experiment::new(&tiny_config(0.1, 3));
        let mut expensive = Experiment::new(&tiny_config(100.0, 3));
        let stop = StopCondition::after_rounds(120);
        let cheap_hist = cheap.run_adaptive(ControllerSpec::Algorithm3, &stop);
        let expensive_hist = expensive.run_adaptive(ControllerSpec::Algorithm3, &stop);
        let tail_mean = |h: &RunHistory| {
            let ks = h.k_sequence();
            let tail = &ks[ks.len() - 30..];
            tail.iter().sum::<usize>() as f64 / tail.len() as f64
        };
        assert!(
            tail_mean(&expensive_hist) < tail_mean(&cheap_hist),
            "expensive comm should push k down: {} vs {}",
            tail_mean(&expensive_hist),
            tail_mean(&cheap_hist)
        );
    }

    #[test]
    fn k_sequence_run_replays_prescribed_values() {
        let mut exp = Experiment::new(&tiny_config(10.0, 4));
        let seq = vec![10, 20, 30];
        let history = exp.run_k_sequence(&seq, &StopCondition::after_rounds(5));
        let ks = history.k_sequence();
        assert_eq!(ks, vec![10, 20, 30, 30, 30]);
    }

    #[test]
    fn fedavg_run_produces_history() {
        let exp = Experiment::new(&tiny_config(10.0, 5));
        let history = exp.run_fedavg(exp.dim() / 20, &StopCondition::after_rounds(25));
        assert_eq!(history.len(), 25);
        assert!(history.final_global_loss().is_some());
        // At least one aggregation round happened (k column equals dim there).
        assert!(history.points().iter().any(|p| p.k == exp.dim()));
    }

    #[test]
    fn target_loss_stops_early() {
        let mut exp = Experiment::new(&tiny_config(0.1, 6));
        // Target slightly below the initial loss: a few rounds should do it.
        let initial = exp.simulation().global_train_loss();
        let history = exp.run_fixed_k(exp.dim(), &StopCondition::until_loss(initial * 0.97, 400));
        assert!(history.len() < 400);
        assert!(history.final_global_loss().unwrap() <= initial * 0.97);
    }

    /// The parallelism knob must be purely a wall-clock knob: a serial and
    /// a multi-threaded experiment with the same seed produce identical
    /// histories (the round engine is bit-deterministic across threads).
    #[test]
    fn serial_and_parallel_experiments_match() {
        use agsfl_exec::Parallelism;
        let mut serial_cfg = tiny_config(10.0, 8);
        serial_cfg.parallelism = Parallelism::Serial;
        let mut parallel_cfg = tiny_config(10.0, 8);
        parallel_cfg.parallelism = Parallelism::Threads(3);
        let stop = StopCondition::after_rounds(8);
        let ha = Experiment::new(&serial_cfg).run_adaptive(ControllerSpec::Algorithm3, &stop);
        let hb = Experiment::new(&parallel_cfg).run_adaptive(ControllerSpec::Algorithm3, &stop);
        assert_eq!(ha.points(), hb.points());
    }

    #[test]
    fn same_seed_same_history() {
        let mut a = Experiment::new(&tiny_config(10.0, 7));
        let mut b = Experiment::new(&tiny_config(10.0, 7));
        let stop = StopCondition::after_rounds(10);
        let ha = a.run_adaptive(ControllerSpec::Algorithm2, &stop);
        let hb = b.run_adaptive(ControllerSpec::Algorithm2, &stop);
        assert_eq!(ha.points(), hb.points());
    }
}
