//! The experiment runner: drives the FL simulator with a `k` controller.

use std::path::PathBuf;

use agsfl_fl::checkpoint::{self, SnapshotReader, SnapshotWriter};
use agsfl_fl::{
    CheckpointError, FedAvgConfig, FedAvgSimulation, MetricPoint, RunHistory, Simulation,
    SimulationConfig, TimeModel,
};
use agsfl_online::{stochastic_round, KController, PrecisionController, RoundFeedback};
use agsfl_telemetry::{Recorder, SpanId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::controllers::ControllerSpec;
use crate::telemetry::{TelemetrySpec, TelemetryState};

/// Magic bytes and version of the run-level checkpoint file: the simulation
/// blob plus the runner's own state (rounding RNG, controller state, round
/// counter, start time, history).
const RUN_MAGIC: [u8; 4] = *b"AGCK";
const RUN_VERSION: u32 = 1;

/// Where and how often a run writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file path; each write atomically replaces the previous
    /// checkpoint (tmp + rename), so the file always holds one complete
    /// snapshot.
    pub path: PathBuf,
    /// Write a checkpoint every this many rounds.
    pub every: usize,
}

impl CheckpointSpec {
    /// Creates a spec checkpointing to `path` every `every` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        Self {
            path: path.into(),
            every,
        }
    }
}

/// When to stop a training run.
///
/// A run stops as soon as **any** enabled criterion triggers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StopCondition {
    /// Maximum number of rounds.
    pub max_rounds: Option<usize>,
    /// Maximum cumulative normalized time.
    pub max_time: Option<f64>,
    /// Stop once the evaluated global loss drops to this value or below.
    pub target_loss: Option<f64>,
}

impl StopCondition {
    /// Stop after exactly `rounds` rounds.
    pub fn after_rounds(rounds: usize) -> Self {
        Self {
            max_rounds: Some(rounds),
            ..Self::default()
        }
    }

    /// Stop once the normalized time budget is exhausted.
    pub fn after_time(time: f64) -> Self {
        Self {
            max_time: Some(time),
            ..Self::default()
        }
    }

    /// Stop once the global loss reaches `loss` (checked at evaluation
    /// points), with `max_rounds` as a safety net.
    pub fn until_loss(loss: f64, max_rounds: usize) -> Self {
        Self {
            max_rounds: Some(max_rounds),
            target_loss: Some(loss),
            ..Self::default()
        }
    }

    /// Adds a time budget to an existing condition.
    pub fn with_max_time(mut self, time: f64) -> Self {
        self.max_time = Some(time);
        self
    }

    fn rounds_exhausted(&self, round: usize) -> bool {
        self.max_rounds.is_some_and(|m| round >= m)
    }

    fn time_exhausted(&self, elapsed: f64) -> bool {
        self.max_time.is_some_and(|t| elapsed >= t)
    }

    fn loss_reached(&self, loss: Option<f64>) -> bool {
        match (self.target_loss, loss) {
            (Some(target), Some(loss)) => loss <= target,
            _ => false,
        }
    }
}

/// A ready-to-run experiment: the FL simulator built from an
/// [`ExperimentConfig`] plus the bookkeeping needed to drive adaptive-`k`
/// controllers and produce [`RunHistory`] time series.
pub struct Experiment {
    config: ExperimentConfig,
    sim: Simulation,
    rounding_rng: ChaCha8Rng,
    telemetry: Option<TelemetryState>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .field("dim", &self.sim.dim())
            .field("clients", &self.sim.num_clients())
            .finish()
    }
}

impl Experiment {
    /// Builds the experiment: generates the dataset, instantiates the model
    /// and sparsifier and wires up the simulator.
    pub fn new(config: &ExperimentConfig) -> Self {
        config.validate();
        let mut data_rng =
            ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
        let dataset = config.dataset.generate(&mut data_rng);
        let model = config
            .model
            .build(dataset.feature_dim(), dataset.num_classes());
        let wire = config
            .wire
            .as_ref()
            .map(|w| w.build(dataset.num_clients(), config.seed));
        let sim = Simulation::new(
            model,
            dataset,
            config.sparsifier.build(),
            SimulationConfig {
                learning_rate: config.learning_rate,
                batch_size: config.batch_size,
                time_model: TimeModel::normalized(config.comm_time),
                seed: config.seed,
                parallelism: config.parallelism,
                wire,
                fault: config.fault.clone(),
                cohort: config.cohort,
            },
        );
        Self {
            config: config.clone(),
            sim,
            rounding_rng: ChaCha8Rng::seed_from_u64(config.seed ^ 0x517C_C1B7_2722_0A95),
            telemetry: None,
        }
    }

    /// Installs a telemetry spec: opens the JSONL sink (truncating any
    /// previous file), resets the recorder, and switches the subsequent runs
    /// onto the recorded round path. When the spec opts into the pool or
    /// timings sets, the executor's worker metrics and the batched-forward
    /// kernel accounting are enabled too.
    ///
    /// Telemetry is observation only: a run with a spec installed is
    /// bit-identical to one without (pinned by `telemetry_determinism.rs`
    /// and the byte-identity test in `tests/metrics_jsonl.rs`).
    pub fn set_telemetry(&mut self, spec: TelemetrySpec) -> std::io::Result<()> {
        self.sim
            .executor()
            .set_metrics_enabled(spec.pool || spec.timings);
        agsfl_ml::stats::set_enabled(spec.timings);
        self.telemetry = Some(TelemetryState::open(spec)?);
        Ok(())
    }

    /// The live telemetry state, if a spec is installed (read the recorder
    /// from here for [`crate::report::telemetry_summary`]).
    pub fn telemetry(&self) -> Option<&TelemetryState> {
        self.telemetry.as_ref()
    }

    /// Uninstalls telemetry, flushing and closing the sink, and returns the
    /// final state (recorder + dispatch histogram) for post-run summaries.
    pub fn take_telemetry(&mut self) -> Option<TelemetryState> {
        self.sim.executor().set_metrics_enabled(false);
        agsfl_ml::stats::set_enabled(false);
        let mut state = self.telemetry.take()?;
        state.flush().ok();
        Some(state)
    }

    /// Model dimension `D`.
    pub fn dim(&self) -> usize {
        self.sim.dim()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.sim.num_clients()
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Read-only access to the underlying simulation (current weights,
    /// elapsed time, …).
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Runs a fixed-`k` training loop.
    pub fn run_fixed_k(&mut self, k: usize, stop: &StopCondition) -> RunHistory {
        let mut controller = ControllerSpec::Fixed(k as f64).build(self.dim(), self.config.seed);
        self.run_with_controller(controller.as_mut(), stop, "Fixed k")
    }

    /// Runs an adaptive-`k` training loop with the given controller spec.
    pub fn run_adaptive(&mut self, spec: ControllerSpec, stop: &StopCondition) -> RunHistory {
        let mut controller = spec.build(self.dim(), self.config.seed);
        self.run_with_controller(controller.as_mut(), stop, spec.name())
    }

    /// Runs the 2-D `(k × precision)` adaptive loop: the given controller
    /// spec keeps authority over `k` while a deterministic
    /// [`PrecisionController`] wrapper picks the uplink precision tier each
    /// round. Without a wire configuration the precision axis is inert and
    /// this reduces to [`Experiment::run_adaptive`].
    pub fn run_adaptive_precision(
        &mut self,
        spec: ControllerSpec,
        stop: &StopCondition,
    ) -> RunHistory {
        let mut controller = PrecisionController::new(spec.build(self.dim(), self.config.seed));
        self.run_with_controller(&mut controller, stop, "2-D (k × precision)")
    }

    /// Runs with an externally constructed controller (useful for ablations
    /// that tweak controller parameters directly).
    pub fn run_with_controller(
        &mut self,
        controller: &mut dyn KController,
        stop: &StopCondition,
        label: &str,
    ) -> RunHistory {
        let history = RunHistory::new(label, self.num_clients());
        let start_time = self.sim.elapsed_time();
        self.run_loop(controller, stop, history, 0, start_time, None)
            .expect("a checkpoint-free run can only fail on telemetry sink I/O")
    }

    /// Like [`Experiment::run_with_controller`], but atomically writes a
    /// checkpoint file every [`CheckpointSpec::every`] rounds. A run killed
    /// between checkpoints can be continued with
    /// [`Experiment::resume_with_controller`]; the resumed run is
    /// bit-identical to one that was never interrupted.
    pub fn run_with_controller_checkpointed(
        &mut self,
        controller: &mut dyn KController,
        stop: &StopCondition,
        label: &str,
        spec: &CheckpointSpec,
    ) -> Result<RunHistory, CheckpointError> {
        let history = RunHistory::new(label, self.num_clients());
        let start_time = self.sim.elapsed_time();
        self.run_loop(controller, stop, history, 0, start_time, Some(spec))
    }

    /// Resumes a run from the checkpoint file at [`CheckpointSpec::path`].
    ///
    /// The experiment must be freshly built from the *same*
    /// [`ExperimentConfig`] the checkpointed run used, and `controller` must
    /// be freshly constructed with the same parameters — the checkpoint
    /// transports only mutable state and rejects mismatched configurations
    /// with [`CheckpointError::Mismatch`]. The run continues (checkpointing
    /// on the same spec) until `stop` triggers, counting rounds from the
    /// checkpointed round number.
    pub fn resume_with_controller(
        &mut self,
        controller: &mut dyn KController,
        stop: &StopCondition,
        spec: &CheckpointSpec,
    ) -> Result<RunHistory, CheckpointError> {
        let bytes = checkpoint::read_file(&spec.path)?;
        let mut r = SnapshotReader::new(&bytes);
        r.header(RUN_MAGIC, RUN_VERSION)?;
        let sim_blob = r.bytes()?;
        let rounding_rng = r.rng()?;
        let controller_bytes = r.bytes()?;
        let round_in_run = r.usize()?;
        let start_time = r.f64()?;
        let history = RunHistory::read_state(&mut r)?;
        r.finish()?;
        // Restore the simulation first: it fingerprints the configuration
        // and rejects a checkpoint from a different experiment before any
        // runner state is touched.
        self.sim.restore_state(&sim_blob)?;
        controller
            .restore_state(&controller_bytes)
            .map_err(|_| CheckpointError::Invalid("controller state"))?;
        self.rounding_rng = rounding_rng;
        self.run_loop(
            controller,
            stop,
            history,
            round_in_run,
            start_time,
            Some(spec),
        )
    }

    /// Serializes the full run state (simulation, rounding RNG, controller,
    /// round counter, history) and writes it atomically to `path`.
    fn save_checkpoint(
        &self,
        controller: &dyn KController,
        history: &RunHistory,
        round_in_run: usize,
        start_time: f64,
        path: &std::path::Path,
    ) -> Result<(), CheckpointError> {
        let mut w = SnapshotWriter::new();
        w.header(RUN_MAGIC, RUN_VERSION);
        w.bytes(&self.sim.save_state());
        w.rng(&self.rounding_rng);
        w.bytes(&controller.save_state());
        w.usize(round_in_run);
        w.f64(start_time);
        history.write_state(&mut w);
        checkpoint::write_atomic(path, &w.into_bytes())
    }

    /// The shared round loop behind [`Experiment::run_with_controller`],
    /// [`Experiment::run_with_controller_checkpointed`] and
    /// [`Experiment::resume_with_controller`]. Checkpoint writes happen
    /// after a round is fully recorded and never touch any RNG, so a
    /// checkpointed run's trajectory is bit-identical to an unobserved one.
    fn run_loop(
        &mut self,
        controller: &mut dyn KController,
        stop: &StopCondition,
        mut history: RunHistory,
        mut round_in_run: usize,
        start_time: f64,
        checkpoint: Option<&CheckpointSpec>,
    ) -> Result<RunHistory, CheckpointError> {
        let dim = self.dim();
        loop {
            if stop.rounds_exhausted(round_in_run)
                || stop.time_exhausted(self.sim.elapsed_time() - start_time)
            {
                break;
            }
            round_in_run += 1;

            let k_cont = controller.propose_k().clamp(1.0, dim as f64);
            let k = stochastic_round(k_cont, &mut self.rounding_rng).min(dim);
            // Always evaluate a probe so bandit-style controllers get a
            // loss-decrease signal; sign-based controllers dictate their own
            // probe k' = k − δ/2.
            let probe_k = controller
                .probe_k()
                .map(|p| p.round().max(1.0) as usize)
                .unwrap_or(k);
            // The second axis of the 2-D (k × precision) action space. Pure-k
            // controllers propose `None` (keep the configured codec), so this
            // is a no-op — and bit-identical to older runs — unless the
            // controller actively adapts the uplink precision. The override is
            // controller policy, not simulation state: after a resume the
            // restored controller re-proposes it here before the next round.
            self.sim.set_wire_precision(controller.propose_precision());
            let report = match self.telemetry.as_mut() {
                Some(state) => {
                    let rec = state.recorder_mut();
                    rec.begin_round();
                    self.sim.run_round_recorded(k, Some(probe_k), rec)
                }
                None => self.sim.run_round(k, Some(probe_k)),
            };

            let feedback = RoundFeedback {
                k_used: report.k_used,
                round_time: report.round_time,
                probe_loss_prev: report.probe.map(|p| p.loss_prev),
                probe_loss_now: report.probe.map(|p| p.loss_now),
                probe_loss_alt: report.probe.map(|p| p.loss_probe),
                probe_round_time: report.probe.map(|p| p.probe_round_time),
                probe_k: report.probe.map(|p| p.probe_k),
                loss_decrease: None,
            };
            controller.observe(&feedback);
            history.record_round(&report);

            // Evaluate strictly on the cadence (plus round 1). The final
            // round of a run that stops off-cadence is filled in after the
            // loop — crucially *after* its checkpoint was written, so a
            // checkpoint never encodes where this particular run chose to
            // stop and a resumed run stays bit-identical to an
            // uninterrupted one.
            let evaluate = round_in_run.is_multiple_of(self.config.eval_every) || round_in_run == 1;
            let (global_loss, test_accuracy) = if evaluate {
                // One fused parallel sweep for both metrics (bit-identical
                // to the individual accessors; see Simulation::evaluate).
                let eval = match self.telemetry.as_mut() {
                    Some(state) => self.sim.evaluate_recorded(state.recorder_mut()),
                    None => self.sim.evaluate(),
                };
                (
                    Some(eval.train_loss as f64),
                    Some(eval.test_accuracy as f64),
                )
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round: round_in_run,
                elapsed_time: self.sim.elapsed_time() - start_time,
                k: report.k_used,
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            if let Some(spec) = checkpoint {
                if round_in_run.is_multiple_of(spec.every) {
                    let t0 = self.telemetry.is_some().then(std::time::Instant::now);
                    self.save_checkpoint(
                        controller,
                        &history,
                        round_in_run,
                        start_time,
                        &spec.path,
                    )?;
                    if let (Some(t0), Some(state)) = (t0, self.telemetry.as_mut()) {
                        state
                            .recorder_mut()
                            .span(SpanId::CheckpointWrite, t0.elapsed().as_nanos() as u64);
                    }
                }
            }
            self.emit_telemetry_round(&report)
                .map_err(|e| CheckpointError::Io(e.to_string()))?;
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        // Evaluation is a read-only measurement, so filling it in here
        // records exactly the values an in-loop evaluation would have.
        if let Some(last) = history.last_point_mut() {
            if last.global_loss.is_none() {
                let eval = match self.telemetry.as_mut() {
                    Some(state) => self.sim.evaluate_recorded(state.recorder_mut()),
                    None => self.sim.evaluate(),
                };
                last.global_loss = Some(eval.train_loss as f64);
                last.test_accuracy = Some(eval.test_accuracy as f64);
            }
        }
        if let Some(state) = self.telemetry.as_mut() {
            state
                .flush()
                .map_err(|e| CheckpointError::Io(e.to_string()))?;
        }
        Ok(history)
    }

    /// Drains per-round pool metrics into the telemetry state and emits the
    /// round's JSONL line. A no-op without an installed spec.
    fn emit_telemetry_round(&mut self, report: &agsfl_fl::RoundReport) -> std::io::Result<()> {
        let Some(state) = self.telemetry.as_mut() else {
            return Ok(());
        };
        let want_pool = state.spec().pool;
        if want_pool {
            self.sim
                .executor()
                .drain_dispatch_latency(state.dispatch_mut());
        }
        let pool = want_pool
            .then(|| self.sim.executor().pool_metrics())
            .flatten();
        state.emit_round(report, pool.as_ref())
    }

    /// Runs with a prescribed sequence of `k` values (used by Figs. 7 and 8
    /// to cross-apply a `{k_m}` sequence adapted for one communication time
    /// to a system with a different communication time). If the run lasts
    /// longer than the sequence, the last value is repeated.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn run_k_sequence(&mut self, sequence: &[usize], stop: &StopCondition) -> RunHistory {
        assert!(!sequence.is_empty(), "k sequence must not be empty");
        let dim = self.dim();
        let mut history = RunHistory::new("prescribed k sequence", self.num_clients());
        let mut round_in_run = 0usize;
        let start_time = self.sim.elapsed_time();
        loop {
            if stop.rounds_exhausted(round_in_run)
                || stop.time_exhausted(self.sim.elapsed_time() - start_time)
            {
                break;
            }
            let k = sequence[round_in_run.min(sequence.len() - 1)].clamp(1, dim);
            round_in_run += 1;
            let report = match self.telemetry.as_mut() {
                Some(state) => {
                    let rec = state.recorder_mut();
                    rec.begin_round();
                    self.sim.run_round_recorded(k, None, rec)
                }
                None => self.sim.run_round(k, None),
            };
            history.record_round(&report);
            let evaluate = round_in_run.is_multiple_of(self.config.eval_every) || round_in_run == 1;
            let (global_loss, test_accuracy) = if evaluate {
                // One fused parallel sweep for both metrics (bit-identical
                // to the individual accessors; see Simulation::evaluate).
                let eval = match self.telemetry.as_mut() {
                    Some(state) => self.sim.evaluate_recorded(state.recorder_mut()),
                    None => self.sim.evaluate(),
                };
                (
                    Some(eval.train_loss as f64),
                    Some(eval.test_accuracy as f64),
                )
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round: round_in_run,
                elapsed_time: self.sim.elapsed_time() - start_time,
                k: report.k_used,
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            self.emit_telemetry_round(&report)
                .expect("telemetry sink I/O failed");
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        if let Some(state) = self.telemetry.as_mut() {
            state.flush().expect("telemetry sink I/O failed");
        }
        history
    }

    /// Runs the FedAvg baseline at the communication overhead equivalent to
    /// `k`-element GS (aggregation every `⌊D/(2k)⌋` rounds), building a fresh
    /// FedAvg simulation from this experiment's configuration.
    pub fn run_fedavg(&self, k_equivalent: usize, stop: &StopCondition) -> RunHistory {
        let config = &self.config;
        let mut data_rng =
            ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
        let dataset = config.dataset.generate(&mut data_rng);
        let model = config
            .model
            .build(dataset.feature_dim(), dataset.num_classes());
        let dim = model.num_params();
        let num_clients = dataset.num_clients();
        let mut sim = FedAvgSimulation::new(
            model,
            dataset,
            FedAvgConfig {
                learning_rate: config.learning_rate,
                batch_size: config.batch_size,
                time_model: TimeModel::normalized(config.comm_time),
                aggregation_period: TimeModel::fedavg_period(dim, k_equivalent),
                seed: config.seed,
                parallelism: config.parallelism,
            },
        );
        let mut history = RunHistory::new("FedAvg", num_clients);
        let mut round = 0usize;
        loop {
            if stop.rounds_exhausted(round) || stop.time_exhausted(sim.elapsed_time()) {
                break;
            }
            round += 1;
            let report = sim.run_round();
            let evaluate = round.is_multiple_of(config.eval_every) || round == 1;
            let (global_loss, test_accuracy) = if evaluate {
                let eval = sim.evaluate();
                (Some(eval.train_loss), Some(eval.test_accuracy))
            } else {
                (None, None)
            };
            history.push(MetricPoint {
                round,
                elapsed_time: sim.elapsed_time(),
                k: if report.aggregated { dim } else { 0 },
                train_loss: report.train_loss,
                global_loss,
                test_accuracy,
            });
            if stop.loss_reached(global_loss) {
                break;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetSpec, ModelSpec};

    fn tiny_config(comm_time: f64, seed: u64) -> ExperimentConfig {
        ExperimentConfig::builder()
            .dataset(DatasetSpec::femnist_tiny())
            .model(ModelSpec::Linear)
            .learning_rate(0.05)
            .batch_size(8)
            .comm_time(comm_time)
            .eval_every(5)
            .seed(seed)
            .build()
    }

    #[test]
    fn stop_conditions_trigger() {
        let rounds = StopCondition::after_rounds(3);
        assert!(rounds.rounds_exhausted(3));
        assert!(!rounds.rounds_exhausted(2));
        let time = StopCondition::after_time(10.0);
        assert!(time.time_exhausted(10.0));
        assert!(!time.time_exhausted(9.9));
        let loss = StopCondition::until_loss(1.0, 100);
        assert!(loss.loss_reached(Some(0.9)));
        assert!(!loss.loss_reached(Some(1.1)));
        assert!(!loss.loss_reached(None));
    }

    #[test]
    fn fixed_k_run_respects_round_budget() {
        let mut exp = Experiment::new(&tiny_config(10.0, 0));
        let history = exp.run_fixed_k(exp.dim() / 10, &StopCondition::after_rounds(12));
        assert_eq!(history.len(), 12);
        assert!(history.points().iter().all(|p| p.k == exp.dim() / 10));
        assert!(history.final_global_loss().is_some());
    }

    #[test]
    fn time_budget_stops_run() {
        let mut exp = Experiment::new(&tiny_config(10.0, 1));
        let history = exp.run_fixed_k(
            exp.dim() / 10,
            &StopCondition::after_rounds(1000).with_max_time(50.0),
        );
        assert!(history.len() < 1000);
        let last = history.points().last().unwrap();
        assert!(last.elapsed_time >= 50.0);
    }

    #[test]
    fn adaptive_run_produces_varying_k() {
        let mut exp = Experiment::new(&tiny_config(100.0, 2));
        let history =
            exp.run_adaptive(ControllerSpec::Algorithm3, &StopCondition::after_rounds(40));
        assert_eq!(history.len(), 40);
        let ks = history.k_sequence();
        assert!(ks.iter().any(|&k| k != ks[0]), "k never changed: {ks:?}");
    }

    #[test]
    fn adaptive_run_with_high_comm_time_prefers_smaller_k() {
        let mut cheap = Experiment::new(&tiny_config(0.1, 3));
        let mut expensive = Experiment::new(&tiny_config(100.0, 3));
        let stop = StopCondition::after_rounds(120);
        let cheap_hist = cheap.run_adaptive(ControllerSpec::Algorithm3, &stop);
        let expensive_hist = expensive.run_adaptive(ControllerSpec::Algorithm3, &stop);
        let tail_mean = |h: &RunHistory| {
            let ks = h.k_sequence();
            let tail = &ks[ks.len() - 30..];
            tail.iter().sum::<usize>() as f64 / tail.len() as f64
        };
        assert!(
            tail_mean(&expensive_hist) < tail_mean(&cheap_hist),
            "expensive comm should push k down: {} vs {}",
            tail_mean(&expensive_hist),
            tail_mean(&cheap_hist)
        );
    }

    #[test]
    fn k_sequence_run_replays_prescribed_values() {
        let mut exp = Experiment::new(&tiny_config(10.0, 4));
        let seq = vec![10, 20, 30];
        let history = exp.run_k_sequence(&seq, &StopCondition::after_rounds(5));
        let ks = history.k_sequence();
        assert_eq!(ks, vec![10, 20, 30, 30, 30]);
    }

    #[test]
    fn fedavg_run_produces_history() {
        let exp = Experiment::new(&tiny_config(10.0, 5));
        let history = exp.run_fedavg(exp.dim() / 20, &StopCondition::after_rounds(25));
        assert_eq!(history.len(), 25);
        assert!(history.final_global_loss().is_some());
        // At least one aggregation round happened (k column equals dim there).
        assert!(history.points().iter().any(|p| p.k == exp.dim()));
    }

    #[test]
    fn target_loss_stops_early() {
        let mut exp = Experiment::new(&tiny_config(0.1, 6));
        // Target slightly below the initial loss: a few rounds should do it.
        let initial = exp.simulation().global_train_loss();
        let history = exp.run_fixed_k(exp.dim(), &StopCondition::until_loss(initial * 0.97, 400));
        assert!(history.len() < 400);
        assert!(history.final_global_loss().unwrap() <= initial * 0.97);
    }

    /// The parallelism knob must be purely a wall-clock knob: a serial and
    /// a multi-threaded experiment with the same seed produce identical
    /// histories (the round engine is bit-deterministic across threads).
    #[test]
    fn serial_and_parallel_experiments_match() {
        use agsfl_exec::Parallelism;
        let mut serial_cfg = tiny_config(10.0, 8);
        serial_cfg.parallelism = Parallelism::Serial;
        let mut parallel_cfg = tiny_config(10.0, 8);
        parallel_cfg.parallelism = Parallelism::Threads(3);
        let stop = StopCondition::after_rounds(8);
        let ha = Experiment::new(&serial_cfg).run_adaptive(ControllerSpec::Algorithm3, &stop);
        let hb = Experiment::new(&parallel_cfg).run_adaptive(ControllerSpec::Algorithm3, &stop);
        assert_eq!(ha.points(), hb.points());
    }

    #[test]
    fn same_seed_same_history() {
        let mut a = Experiment::new(&tiny_config(10.0, 7));
        let mut b = Experiment::new(&tiny_config(10.0, 7));
        let stop = StopCondition::after_rounds(10);
        let ha = a.run_adaptive(ControllerSpec::Algorithm2, &stop);
        let hb = b.run_adaptive(ControllerSpec::Algorithm2, &stop);
        assert_eq!(ha.points(), hb.points());
    }

    fn faulty_wired_config(seed: u64) -> ExperimentConfig {
        use crate::config::{ChannelSpec, WireSpec};
        use agsfl_fl::FaultModel;
        use agsfl_wire::CodecSpec;
        ExperimentConfig::builder()
            .dataset(DatasetSpec::femnist_tiny())
            .model(ModelSpec::Linear)
            .learning_rate(0.05)
            .batch_size(8)
            .comm_time(10.0)
            .eval_every(5)
            .seed(seed)
            .wire(WireSpec {
                codec: CodecSpec::Auto,
                channel: ChannelSpec::uniform(2_000.0, 4_000.0, 0.05),
            })
            .fault(FaultModel {
                drop_prob: 0.15,
                crash_prob: 0.05,
                outage_rounds: (1, 2),
                straggle_prob: 0.2,
                straggle_factor: 4.0,
                deadline: None,
                corrupt_prob: 0.2,
                max_retries: 2,
                retry_backoff: 0.01,
                seed: seed ^ 0xFA,
            })
            .build()
    }

    fn unique_ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("agsfl_run_ckpt_{}_{tag}.bin", std::process::id()))
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let cfg = tiny_config(10.0, 21);
        let total = 10;
        let mut reference = Experiment::new(&cfg);
        let mut c_ref = ControllerSpec::Algorithm3.build(reference.dim(), cfg.seed);
        let full = reference.run_with_controller(
            c_ref.as_mut(),
            &StopCondition::after_rounds(total),
            "run",
        );
        for interrupt in [1usize, 5, 9] {
            let spec = CheckpointSpec::new(unique_ckpt_path(&format!("plain_{interrupt}")), 1);
            let mut first = Experiment::new(&cfg);
            let mut c1 = ControllerSpec::Algorithm3.build(first.dim(), cfg.seed);
            first
                .run_with_controller_checkpointed(
                    c1.as_mut(),
                    &StopCondition::after_rounds(interrupt),
                    "run",
                    &spec,
                )
                .unwrap();
            // A fresh experiment + fresh controller stand in for a new
            // process picking the run back up from the file.
            let mut second = Experiment::new(&cfg);
            let mut c2 = ControllerSpec::Algorithm3.build(second.dim(), cfg.seed);
            let resumed = second
                .resume_with_controller(c2.as_mut(), &StopCondition::after_rounds(total), &spec)
                .unwrap();
            assert_eq!(
                resumed.points(),
                full.points(),
                "interrupt at round {interrupt} diverged"
            );
            std::fs::remove_file(&spec.path).ok();
        }
    }

    #[test]
    fn faulty_wired_run_resumes_bit_identically() {
        let cfg = faulty_wired_config(31);
        let total = 8;
        let mut reference = Experiment::new(&cfg);
        let mut c_ref = ControllerSpec::Algorithm2.build(reference.dim(), cfg.seed);
        let full = reference.run_with_controller(
            c_ref.as_mut(),
            &StopCondition::after_rounds(total),
            "faulty",
        );
        // Faults actually fired, and the runner recorded them.
        let totals = full.fault_totals();
        assert!(
            totals.lost() + totals.stragglers > 0,
            "chaos model was inert"
        );

        let spec = CheckpointSpec::new(unique_ckpt_path("faulty"), 2);
        let mut first = Experiment::new(&cfg);
        let mut c1 = ControllerSpec::Algorithm2.build(first.dim(), cfg.seed);
        first
            .run_with_controller_checkpointed(
                c1.as_mut(),
                &StopCondition::after_rounds(4),
                "faulty",
                &spec,
            )
            .unwrap();
        let mut second = Experiment::new(&cfg);
        let mut c2 = ControllerSpec::Algorithm2.build(second.dim(), cfg.seed);
        let resumed = second
            .resume_with_controller(c2.as_mut(), &StopCondition::after_rounds(total), &spec)
            .unwrap();
        assert_eq!(resumed.points(), full.points());
        assert_eq!(resumed.fault_totals(), full.fault_totals());
        std::fs::remove_file(&spec.path).ok();
    }

    #[test]
    fn precision_adaptive_run_engages_lossy_tiers_and_resumes_bit_identically() {
        use crate::config::{ChannelSpec, WireSpec};
        use agsfl_wire::CodecSpec;
        let mut cfg = tiny_config(10.0, 51);
        cfg.wire = Some(WireSpec {
            codec: CodecSpec::Auto,
            channel: ChannelSpec::uniform(2_000.0, 4_000.0, 0.05),
        });
        let total = 8;
        let mut reference = Experiment::new(&cfg);
        let full = reference.run_adaptive_precision(
            ControllerSpec::Algorithm3,
            &StopCondition::after_rounds(total),
        );
        // The wrapper's exploration phase walks every tier, so both lossless
        // (ids 0–2) and lossy (ids 3–5) frames must appear on the wire.
        let counts = full.codec_counts();
        assert!(
            counts[..3].iter().sum::<u64>() > 0,
            "no lossless frames: {counts:?}"
        );
        assert!(
            counts[3..].iter().sum::<u64>() > 0,
            "no lossy frames: {counts:?}"
        );

        // A checkpointed + resumed 2-D run is bit-identical to the
        // uninterrupted one: the restored wrapper re-proposes the precision
        // tier before each round, so the tier schedule survives the resume.
        let spec = CheckpointSpec::new(unique_ckpt_path("precision"), 1);
        let mut first = Experiment::new(&cfg);
        let mut c1 =
            PrecisionController::new(ControllerSpec::Algorithm3.build(first.dim(), cfg.seed));
        first
            .run_with_controller_checkpointed(
                &mut c1,
                &StopCondition::after_rounds(3),
                "2-D (k × precision)",
                &spec,
            )
            .unwrap();
        let mut second = Experiment::new(&cfg);
        let mut c2 =
            PrecisionController::new(ControllerSpec::Algorithm3.build(second.dim(), cfg.seed));
        let resumed = second
            .resume_with_controller(&mut c2, &StopCondition::after_rounds(total), &spec)
            .unwrap();
        assert_eq!(resumed.points(), full.points());
        assert_eq!(resumed.codec_counts(), full.codec_counts());
        std::fs::remove_file(&spec.path).ok();
    }

    #[test]
    fn resume_rejects_checkpoint_from_different_experiment() {
        let cfg = tiny_config(10.0, 41);
        let spec = CheckpointSpec::new(unique_ckpt_path("mismatch"), 1);
        let mut first = Experiment::new(&cfg);
        let mut c1 = ControllerSpec::Algorithm3.build(first.dim(), cfg.seed);
        first
            .run_with_controller_checkpointed(
                c1.as_mut(),
                &StopCondition::after_rounds(2),
                "run",
                &spec,
            )
            .unwrap();
        // Same shape, different seed: the simulation fingerprint must refuse.
        let other_cfg = tiny_config(10.0, 42);
        let mut other = Experiment::new(&other_cfg);
        let mut c2 = ControllerSpec::Algorithm3.build(other.dim(), other_cfg.seed);
        let err = other
            .resume_with_controller(c2.as_mut(), &StopCondition::after_rounds(4), &spec)
            .unwrap_err();
        assert_eq!(err, CheckpointError::Mismatch { field: "seed" });
        // A missing file is a typed I/O error, not a panic.
        std::fs::remove_file(&spec.path).unwrap();
        let mut c3 = ControllerSpec::Algorithm3.build(other.dim(), other_cfg.seed);
        assert!(matches!(
            Experiment::new(&other_cfg)
                .resume_with_controller(c3.as_mut(), &StopCondition::after_rounds(4), &spec)
                .unwrap_err(),
            CheckpointError::Io(_)
        ));
    }
}
