//! Run-level telemetry: the [`TelemetrySpec`] knob, the per-round
//! `metrics.jsonl` emission, and the recorder state an [`Experiment`]
//! carries while a spec is installed.
//!
//! # The byte-identity contract
//!
//! A metrics line always carries the round's **deterministic facts** —
//! round number, `k`, training loss, simulated times, cohort size, wire
//! bytes, codec frame counts, fault tallies. Every one of them is a pure
//! function of the seeded trajectory, so two identically-configured runs
//! write **byte-identical** `metrics.jsonl` files (pinned by a test).
//! Wall-clock observations — stage span nanoseconds ([`TelemetrySpec::
//! timings`]), worker-pool counters ([`TelemetrySpec::pool`]), and process
//! memory probes ([`TelemetrySpec::memory`]) — vary run to run by nature,
//! so each set must be opted into explicitly and is appended *after* the
//! deterministic fields, keeping the stable prefix grep-able.
//!
//! Telemetry is observation only in the strong sense the rest of the
//! workspace pins: installing a spec draws no randomness and perturbs no
//! float fold, so a recorded run's trajectory is bit-identical to an
//! unobserved one (the goldens run with recording enabled in
//! `telemetry_determinism.rs`).
//!
//! [`Experiment`]: crate::Experiment

use std::io;
use std::path::PathBuf;

use agsfl_exec::metrics::PoolMetricsSnapshot;
use agsfl_fl::RoundReport;
use agsfl_telemetry::{CounterId, GaugeId, Histogram, JsonlSink, Recorder, SpanId, StageRecorder};

/// How a run records and sinks telemetry. Install on an
/// [`Experiment`](crate::Experiment) with
/// [`Experiment::set_telemetry`](crate::Experiment::set_telemetry).
///
/// This is a runtime knob, not configuration: it is deliberately not part
/// of [`ExperimentConfig`](crate::ExperimentConfig) (and therefore never
/// serialized or fingerprinted into checkpoints), because observation must
/// never decide whether two runs count as "the same experiment".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySpec {
    /// Where to write the JSONL metrics stream (one self-describing object
    /// per round). `None` records in memory only — the
    /// [`StageRecorder`] is still available for summaries.
    pub path: Option<PathBuf>,
    /// Sink flush cadence in lines (0 is treated as 1: flush every line).
    /// Memory probes sample on the same cadence.
    pub flush_every: usize,
    /// Include wall-clock stage spans in each line and enable the
    /// batched-forward kernel accounting. Non-deterministic.
    pub timings: bool,
    /// Include worker-pool counters (busy/idle fractions, dispatch
    /// latency, queue depth) and enable them on the executor.
    /// Non-deterministic.
    pub pool: bool,
    /// Include process memory probes (RSS, peak RSS, thread count),
    /// sampled every [`TelemetrySpec::flush_every`] rounds.
    /// Non-deterministic.
    pub memory: bool,
}

impl TelemetrySpec {
    /// The deterministic default: sink to `path`, flush every 32 lines, no
    /// wall-clock sets — two identical seeded runs produce byte-identical
    /// files.
    pub fn deterministic(path: impl Into<PathBuf>) -> Self {
        Self {
            path: Some(path.into()),
            flush_every: 32,
            ..Self::default()
        }
    }

    /// Everything on: the deterministic fields plus timings, pool, and
    /// memory sets. The file is no longer byte-reproducible.
    pub fn full(path: impl Into<PathBuf>) -> Self {
        Self {
            path: Some(path.into()),
            flush_every: 32,
            timings: true,
            pool: true,
            memory: true,
        }
    }

    /// Adds the wall-clock stage-span set.
    pub fn with_timings(mut self) -> Self {
        self.timings = true;
        self
    }

    /// Adds the worker-pool set.
    pub fn with_pool(mut self) -> Self {
        self.pool = true;
        self
    }

    /// Adds the memory-probe set.
    pub fn with_memory(mut self) -> Self {
        self.memory = true;
        self
    }
}

/// Live telemetry state of a run: the installed spec, the accumulating
/// recorder, and the open sink.
#[derive(Debug)]
pub struct TelemetryState {
    spec: TelemetrySpec,
    recorder: StageRecorder,
    dispatch: Histogram,
    sink: Option<JsonlSink>,
    lines: usize,
}

impl TelemetryState {
    /// Opens the sink (truncating any previous file) and prepares a fresh
    /// recorder.
    pub fn open(spec: TelemetrySpec) -> io::Result<Self> {
        let flush_every = spec.flush_every.max(1);
        let sink = match &spec.path {
            Some(path) => Some(JsonlSink::create(path, flush_every)?),
            None => None,
        };
        Ok(Self {
            spec,
            recorder: StageRecorder::new(),
            dispatch: Histogram::new(),
            sink,
            lines: 0,
        })
    }

    /// The installed spec.
    pub fn spec(&self) -> &TelemetrySpec {
        &self.spec
    }

    /// The accumulating recorder (for summaries after the run).
    pub fn recorder(&self) -> &StageRecorder {
        &self.recorder
    }

    /// Mutable recorder access for the round loop.
    pub(crate) fn recorder_mut(&mut self) -> &mut StageRecorder {
        &mut self.recorder
    }

    /// The cumulative task dispatch-latency histogram (submit → dequeue),
    /// drained from the worker pool on each round when the pool set is on.
    pub fn dispatch_histogram(&self) -> &Histogram {
        &self.dispatch
    }

    /// Mutable dispatch-histogram access for the round loop's drain.
    pub(crate) fn dispatch_mut(&mut self) -> &mut Histogram {
        &mut self.dispatch
    }

    /// Emits one round's metrics line and flushes on the spec's cadence.
    /// Call after `run_round_recorded` returned `report` into `self`'s
    /// recorder. `pool` is the executor's snapshot when the pool set is on.
    pub(crate) fn emit_round(
        &mut self,
        report: &RoundReport,
        pool: Option<&PoolMetricsSnapshot>,
    ) -> io::Result<()> {
        self.lines += 1;
        // Memory probes sample on the flush cadence (first line included)
        // and land in the recorder's gauges even when no sink is open.
        let sample_memory =
            self.spec.memory && (self.lines - 1).is_multiple_of(self.spec.flush_every.max(1));
        if sample_memory {
            if let Some(rss) = agsfl_exec::mem::current_rss_bytes() {
                self.recorder.gauge(GaugeId::RssBytes, rss);
            }
            if let Some(peak) = agsfl_exec::mem::peak_rss_bytes() {
                self.recorder.gauge(GaugeId::RssPeakBytes, peak);
            }
            if let Some(threads) = agsfl_exec::mem::thread_count() {
                self.recorder.gauge(GaugeId::Threads, threads);
            }
        }
        let Some(sink) = &mut self.sink else {
            return Ok(());
        };
        let line = render_line(&self.spec, &self.recorder, report, pool, sample_memory);
        sink.write_line(&line)
    }

    /// Flushes any buffered lines (also happens on drop).
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

/// Renders one self-describing JSONL object for a finished round. The
/// deterministic fields come first in a fixed order; opted-in wall-clock
/// sets follow.
fn render_line(
    spec: &TelemetrySpec,
    rec: &StageRecorder,
    report: &RoundReport,
    pool: Option<&PoolMetricsSnapshot>,
    include_memory: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"round\":{},\"k\":{},\"train_loss\":{},\"round_time\":{},\"elapsed_time\":{},\"cohort\":{},\"downlink_elements\":{}",
        report.round,
        report.k_used,
        report.train_loss,
        report.round_time,
        report.elapsed_time,
        report.cohort.len(),
        report.downlink_elements,
    );
    if let Some(wire) = &report.wire {
        let uplink: u64 = wire.uplink_bytes.iter().map(|&b| b as u64).sum();
        let _ = write!(
            s,
            ",\"uplink_bytes\":{},\"max_uplink_bytes\":{},\"downlink_bytes\":{},\"uplink_frames\":{},\"downlink_codec\":\"{}\"",
            uplink,
            wire.max_uplink_bytes,
            wire.downlink_bytes,
            wire.uplink_codecs.len(),
            wire.downlink_codec.name(),
        );
    }
    if let Some(fault) = &report.fault {
        let _ = write!(
            s,
            ",\"fault\":{{\"offline\":{},\"dropped\":{},\"stragglers\":{},\"corrupt_frames\":{},\"lost\":{},\"retries\":{},\"retransmitted_bytes\":{},\"survivors\":{}}}",
            fault.offline,
            fault.dropped,
            fault.stragglers,
            fault.corrupt_frames,
            fault.corrupt_lost + fault.deadline_dropped,
            fault.retries,
            fault.retransmitted_bytes,
            fault.survivors,
        );
    }
    if spec.timings {
        s.push_str(",\"spans_ns\":{");
        let mut first = true;
        for id in SpanId::ALL {
            let ns = rec.round_span_ns(id);
            if ns == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{}", id.name(), ns);
        }
        s.push('}');
        let rows = rec.round_counter(CounterId::BatchedForwardRows);
        if rows > 0 {
            let _ = write!(s, ",\"batched_forward_rows\":{rows}");
        }
    }
    if spec.pool {
        if let Some(snap) = pool {
            let _ = write!(
                s,
                ",\"pool\":{{\"workers\":{},\"busy_ns\":{},\"idle_ns\":{},\"tasks\":{},\"queue_depth_peak\":{},\"imbalance\":{}}}",
                snap.workers.len(),
                snap.total_busy_ns(),
                snap.total_idle_ns(),
                snap.total_tasks(),
                snap.queue_depth_peak,
                snap.imbalance_ratio(),
            );
        }
    }
    if include_memory {
        let _ = write!(
            s,
            ",\"mem\":{{\"rss_bytes\":{},\"rss_peak_bytes\":{},\"threads\":{}}}",
            rec.gauge_value(GaugeId::RssBytes),
            rec.gauge_value(GaugeId::RssPeakBytes),
            rec.gauge_value(GaugeId::Threads),
        );
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_spec_has_no_wallclock_sets() {
        let spec = TelemetrySpec::deterministic("m.jsonl");
        assert!(!spec.timings && !spec.pool && !spec.memory);
        assert_eq!(spec.flush_every, 32);
        let full = TelemetrySpec::full("m.jsonl");
        assert!(full.timings && full.pool && full.memory);
    }

    #[test]
    fn line_orders_deterministic_fields_first() {
        let spec = TelemetrySpec {
            path: None,
            flush_every: 1,
            timings: true,
            pool: false,
            memory: false,
        };
        let mut rec = StageRecorder::new();
        rec.begin_round();
        rec.span(SpanId::ClientPass, 1234);
        let report = RoundReport {
            round: 1,
            k_used: 8,
            train_loss: 0.5,
            round_time: 2.0,
            elapsed_time: 2.0,
            downlink_elements: 8,
            max_uplink_scalars: 8,
            cohort: vec![0, 1, 2],
            contributions: vec![1, 2, 3],
            probe: None,
            wire: None,
            fault: None,
        };
        let line = render_line(&spec, &rec, &report, None, false);
        assert!(line.starts_with("{\"round\":1,\"k\":8,\"train_loss\":0.5"));
        assert!(line.contains("\"spans_ns\":{\"client_pass\":1234}"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }
}
