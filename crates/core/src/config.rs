//! Declarative experiment configuration.

use agsfl_exec::Parallelism;
use agsfl_fl::{ChannelModel, ClientLink, FaultConfigError, FaultModel, WireConfig};
use agsfl_ml::data::{
    FederatedDataset, SyntheticCifar, SyntheticCifarConfig, SyntheticFemnist,
    SyntheticFemnistConfig,
};
use agsfl_ml::model::{LinearSoftmax, Mlp, Model, SimpleCnn};
use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, Sparsifier, UnidirectionalTopK};
use agsfl_wire::CodecSpec;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which federated dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// Synthetic FEMNIST-like dataset (writer-partitioned, 62 classes by
    /// default). See [`SyntheticFemnistConfig`].
    Femnist(SyntheticFemnistConfig),
    /// Synthetic CIFAR-10-like dataset with the one-class-per-client
    /// partition. See [`SyntheticCifarConfig`].
    Cifar(SyntheticCifarConfig),
}

impl DatasetSpec {
    /// The paper-scale FEMNIST setup (156 clients, 62 classes).
    pub fn femnist_paper() -> Self {
        Self::Femnist(SyntheticFemnistConfig::default())
    }

    /// A small FEMNIST setup for tests, examples and fast benchmarks.
    pub fn femnist_tiny() -> Self {
        Self::Femnist(SyntheticFemnistConfig::tiny())
    }

    /// A mid-sized FEMNIST setup used by the benchmark harness: enough
    /// clients and classes to show the paper's effects while keeping every
    /// figure regenerable in seconds. The noise and writer-shift levels are
    /// chosen so the task does not saturate within the benchmark time
    /// budgets (mirroring the paper's harder 62-class problem).
    pub fn femnist_bench() -> Self {
        Self::Femnist(SyntheticFemnistConfig {
            num_clients: 40,
            samples_per_client: 60,
            feature_dim: 48,
            num_classes: 30,
            classes_per_client: 6,
            writer_shift_std: 0.6,
            noise_std: 0.7,
            test_samples: 400,
        })
    }

    /// The paper-scale CIFAR-10 setup (100 clients, one class each).
    pub fn cifar_paper() -> Self {
        Self::Cifar(SyntheticCifarConfig::default())
    }

    /// A small CIFAR-10 setup for tests and fast benchmarks.
    pub fn cifar_bench() -> Self {
        Self::Cifar(SyntheticCifarConfig {
            num_clients: 30,
            num_classes: 10,
            train_samples: 1_800,
            test_samples: 300,
            feature_dim: 48,
            noise_std: 0.7,
        })
    }

    /// Number of classes of the generated dataset.
    pub fn num_classes(&self) -> usize {
        match self {
            Self::Femnist(cfg) => cfg.num_classes,
            Self::Cifar(cfg) => cfg.num_classes,
        }
    }

    /// Feature dimension of the generated dataset.
    pub fn feature_dim(&self) -> usize {
        match self {
            Self::Femnist(cfg) => cfg.feature_dim,
            Self::Cifar(cfg) => cfg.feature_dim,
        }
    }

    /// Generates the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedDataset {
        match self {
            Self::Femnist(cfg) => SyntheticFemnist::new(*cfg).generate(rng),
            Self::Cifar(cfg) => SyntheticCifar::new(*cfg).generate(rng),
        }
    }
}

/// Which model architecture to train.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multinomial logistic regression.
    Linear,
    /// Multi-layer perceptron with the given hidden widths.
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
    /// The small CNN; the feature dimension must equal
    /// `channels · height · width`.
    Cnn {
        /// Input channels.
        channels: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
        /// Number of 3x3 filters.
        filters: usize,
    },
}

impl ModelSpec {
    /// Instantiates the model for the given input dimension and class count.
    ///
    /// # Panics
    ///
    /// Panics if a [`ModelSpec::Cnn`] spec does not match `input_dim`.
    pub fn build(&self, input_dim: usize, num_classes: usize) -> Box<dyn Model> {
        match self {
            Self::Linear => Box::new(LinearSoftmax::new(input_dim, num_classes)),
            Self::Mlp { hidden } => Box::new(Mlp::new(input_dim, hidden, num_classes)),
            Self::Cnn {
                channels,
                height,
                width,
                filters,
            } => {
                assert_eq!(
                    channels * height * width,
                    input_dim,
                    "CNN spec {}x{}x{} does not match input dim {}",
                    channels,
                    height,
                    width,
                    input_dim
                );
                Box::new(SimpleCnn::new(
                    *channels,
                    *height,
                    *width,
                    *filters,
                    num_classes,
                ))
            }
        }
    }
}

/// Which gradient sparsification method the server/clients use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparsifierSpec {
    /// The paper's fairness-aware bidirectional top-k.
    FabTopK,
    /// Fairness-unaware bidirectional top-k.
    FubTopK,
    /// Unidirectional top-k (downlink up to `kN` elements).
    UnidirectionalTopK,
    /// Random `k` coordinates per round.
    PeriodicK,
    /// Dense exchange every round.
    SendAll,
}

impl SparsifierSpec {
    /// Instantiates the sparsifier.
    pub fn build(&self) -> Box<dyn Sparsifier> {
        match self {
            Self::FabTopK => Box::new(FabTopK::new()),
            Self::FubTopK => Box::new(FubTopK::new()),
            Self::UnidirectionalTopK => Box::new(UnidirectionalTopK::new()),
            Self::PeriodicK => Box::new(PeriodicK::new()),
            Self::SendAll => Box::new(SendAll::new()),
        }
    }

    /// All sparsifier variants compared in Fig. 4, in the paper's order.
    pub fn all() -> [SparsifierSpec; 5] {
        [
            Self::FabTopK,
            Self::FubTopK,
            Self::UnidirectionalTopK,
            Self::PeriodicK,
            Self::SendAll,
        ]
    }

    /// Human-readable name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FabTopK => "FAB-top-k",
            Self::FubTopK => "FUB-top-k",
            Self::UnidirectionalTopK => "Unidirectional top-k",
            Self::PeriodicK => "Periodic-k",
            Self::SendAll => "Always send all",
        }
    }
}

/// Optional sinusoidal bandwidth fluctuation of a [`ChannelSpec`]: client
/// `i`'s bandwidths in round `m` are scaled by
/// `1 − depth · (1 + sin(2π(m/period + i/N))) / 2`, i.e. they oscillate
/// between full capacity and `1 − depth` of it with per-client phase
/// offsets (clients don't all fade at once). Deterministic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fluctuation {
    /// Period of the oscillation in rounds.
    pub period: usize,
    /// Peak-to-trough depth in `(0, 1)`; `0.75` means bandwidth dips to a
    /// quarter of nominal.
    pub depth: f64,
}

/// Declarative description of the per-client channel a byte-priced
/// experiment runs over; [`ChannelSpec::build`] turns it into the concrete
/// [`ChannelModel`] once the client count is known.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Nominal uplink capacity in bytes per normalized time unit.
    pub uplink_bytes_per_unit: f64,
    /// Nominal downlink capacity in bytes per normalized time unit.
    pub downlink_bytes_per_unit: f64,
    /// Fixed per-message latency in normalized time units.
    pub latency: f64,
    /// Per-client heterogeneity: each client's bandwidths are scaled by a
    /// factor drawn log-uniformly from `[1/spread, spread]` (seeded from
    /// the experiment seed, so deterministic). `1.0` = homogeneous.
    pub spread: f64,
    /// Optional per-round bandwidth fluctuation.
    pub fluctuation: Option<Fluctuation>,
}

impl ChannelSpec {
    /// A homogeneous, static channel.
    pub fn uniform(uplink_bytes_per_unit: f64, downlink_bytes_per_unit: f64, latency: f64) -> Self {
        Self {
            uplink_bytes_per_unit,
            downlink_bytes_per_unit,
            latency,
            spread: 1.0,
            fluctuation: None,
        }
    }

    /// Adds log-uniform per-client bandwidth heterogeneity.
    pub fn with_spread(mut self, spread: f64) -> Self {
        assert!(spread >= 1.0, "spread must be >= 1");
        self.spread = spread;
        self
    }

    /// Adds a sinusoidal per-round bandwidth fluctuation.
    pub fn with_fluctuation(mut self, period: usize, depth: f64) -> Self {
        assert!(period > 0, "fluctuation period must be positive");
        assert!((0.0..1.0).contains(&depth), "depth must be in [0, 1)");
        self.fluctuation = Some(Fluctuation { period, depth });
        self
    }

    /// Builds the concrete [`ChannelModel`] for `num_clients` clients.
    /// Per-client heterogeneity is drawn from a ChaCha8 stream derived from
    /// `seed`, so the same spec + seed always yields the same channel.
    ///
    /// # Panics
    ///
    /// Panics if the spec is out of range (`spread < 1`, a fluctuation with
    /// `period == 0` or `depth` outside `[0, 1)`). The builder methods
    /// already enforce these, but the fields are public and the spec is
    /// deserializable, so the ranges are re-checked here — a bad spec must
    /// not silently build a misbehaving channel.
    pub fn build(&self, num_clients: usize, seed: u64) -> ChannelModel {
        assert!(self.spread >= 1.0, "spread must be >= 1");
        if let Some(Fluctuation { period, depth }) = self.fluctuation {
            assert!(period > 0, "fluctuation period must be positive");
            assert!((0.0..1.0).contains(&depth), "depth must be in [0, 1)");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00C0_FFEE_A11C_E5E5);
        let links = (0..num_clients)
            .map(|_| {
                let factor = if self.spread > 1.0 {
                    let ln = self.spread.ln();
                    rng.gen_range(-ln..ln).exp()
                } else {
                    1.0
                };
                ClientLink::new(
                    self.uplink_bytes_per_unit * factor,
                    self.downlink_bytes_per_unit * factor,
                    self.latency,
                )
            })
            .collect();
        let model = ChannelModel::new(1.0, links);
        match self.fluctuation {
            None => model,
            Some(Fluctuation { period, depth }) => {
                let trace = (0..period)
                    .map(|m| {
                        (0..num_clients)
                            .map(|i| {
                                let phase =
                                    m as f64 / period as f64 + i as f64 / num_clients.max(1) as f64;
                                let wave = (1.0 + (2.0 * std::f64::consts::PI * phase).sin()) / 2.0;
                                1.0 - depth * wave
                            })
                            .collect()
                    })
                    .collect();
                model.with_trace(trace)
            }
        }
    }
}

/// Byte-priced exchange settings of an [`ExperimentConfig`]: which codec
/// frames the messages and what channel they cross. When present, round
/// times come from the channel model instead of the `comm_time` scalar
/// proxy (training trajectories are unaffected — the codecs are lossless).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireSpec {
    /// The wire codec.
    pub codec: CodecSpec,
    /// The channel description.
    pub channel: ChannelSpec,
}

impl WireSpec {
    /// Builds the simulator-level [`WireConfig`] for a concrete client
    /// count and seed.
    pub fn build(&self, num_clients: usize, seed: u64) -> WireConfig {
        WireConfig {
            codec: self.codec,
            channel: self.channel.build(num_clients, seed),
        }
    }
}

/// Full description of one experiment workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The federated dataset.
    pub dataset: DatasetSpec,
    /// The model architecture.
    pub model: ModelSpec,
    /// The sparsification method (FAB-top-k unless an experiment compares
    /// methods).
    pub sparsifier: SparsifierSpec,
    /// SGD step size `η`.
    pub learning_rate: f32,
    /// Mini-batch size per client.
    pub batch_size: usize,
    /// Normalized communication time `β` of a full-gradient exchange.
    pub comm_time: f64,
    /// Evaluate global loss / test accuracy every this many rounds.
    pub eval_every: usize,
    /// Master seed controlling dataset generation, initialization, mini-batch
    /// sampling and stochastic rounding.
    pub seed: u64,
    /// Worker-thread policy for the round engine. Purely a wall-clock knob:
    /// results are bit-identical for every setting (the simulator's
    /// determinism invariant), so sweeps may mix serial and parallel runs.
    pub parallelism: Parallelism,
    /// Optional byte-priced exchange (wire codec + channel model). When
    /// set, `comm_time` is ignored for round pricing — the channel is the
    /// cost signal; training trajectories stay bit-identical either way.
    pub wire: Option<WireSpec>,
    /// Optional seeded fault model: client dropout, crash outages,
    /// stragglers, wire-frame corruption with bounded retries, and a round
    /// deadline. Wire-level faults (corruption, retries, deadline pricing)
    /// require [`ExperimentConfig::wire`] to be set.
    pub fault: Option<FaultModel>,
    /// Optional cohort size: each round samples this many clients without
    /// replacement from the population and only their state is resident.
    /// `None` (the default) runs every client every round; `Some(c)` with
    /// `c >= num_clients` is equivalent to `None` bit-for-bit.
    pub cohort: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            dataset: DatasetSpec::femnist_bench(),
            model: ModelSpec::Mlp { hidden: vec![32] },
            sparsifier: SparsifierSpec::FabTopK,
            learning_rate: 0.01,
            batch_size: 32,
            comm_time: 10.0,
            eval_every: 10,
            seed: 0,
            parallelism: Parallelism::Auto,
            wire: None,
            fault: None,
            cohort: None,
        }
    }
}

/// Typed validation error for an [`ExperimentConfig`].
///
/// Returned by [`ExperimentConfig::try_validate`] and
/// [`ExperimentConfigBuilder::try_build`], so a bad configuration surfaces
/// as a value at build time instead of a panic mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The learning rate is zero, negative, or not finite.
    InvalidLearningRate,
    /// The mini-batch size is zero.
    ZeroBatchSize,
    /// The scalar communication time is negative or not finite.
    InvalidCommTime,
    /// The evaluation cadence is zero.
    ZeroEvalEvery,
    /// The sampled cohort size is zero.
    ZeroCohort,
    /// The fault model is out of range or needs a wire configuration.
    Fault(FaultConfigError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidLearningRate => write!(f, "learning rate must be positive and finite"),
            Self::ZeroBatchSize => write!(f, "batch size must be positive"),
            Self::InvalidCommTime => write!(f, "comm time must be non-negative and finite"),
            Self::ZeroEvalEvery => write!(f, "eval_every must be positive"),
            Self::ZeroCohort => write!(f, "cohort size must be positive when set"),
            Self::Fault(e) => write!(f, "invalid fault model: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultConfigError> for ConfigError {
    fn from(e: FaultConfigError) -> Self {
        Self::Fault(e)
    }
}

impl ExperimentConfig {
    /// Starts a builder pre-populated with the defaults.
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates the configuration, returning a typed error on the first
    /// out-of-range field.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(ConfigError::InvalidLearningRate);
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if !(self.comm_time >= 0.0 && self.comm_time.is_finite()) {
            return Err(ConfigError::InvalidCommTime);
        }
        if self.eval_every == 0 {
            return Err(ConfigError::ZeroEvalEvery);
        }
        if self.cohort == Some(0) {
            return Err(ConfigError::ZeroCohort);
        }
        if let Some(fault) = &self.fault {
            fault.validate(self.wire.is_some())?;
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range; [`ExperimentConfig::try_validate`]
    /// is the non-panicking form.
    pub fn validate(&self) {
        if let Err(error) = self.try_validate() {
            panic!("invalid experiment config: {error}");
        }
    }
}

/// Non-consuming builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the dataset.
    pub fn dataset(mut self, dataset: DatasetSpec) -> Self {
        self.config.dataset = dataset;
        self
    }

    /// Sets the model.
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the sparsifier.
    pub fn sparsifier(mut self, sparsifier: SparsifierSpec) -> Self {
        self.config.sparsifier = sparsifier;
        self
    }

    /// Sets the learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.learning_rate = lr;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Sets the normalized communication time `β`.
    pub fn comm_time(mut self, comm_time: f64) -> Self {
        self.config.comm_time = comm_time;
        self
    }

    /// Sets the evaluation cadence.
    pub fn eval_every(mut self, eval_every: usize) -> Self {
        self.config.eval_every = eval_every;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread policy for the round engine.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Switches the experiment onto the byte-priced exchange path.
    pub fn wire(mut self, wire: WireSpec) -> Self {
        self.config.wire = Some(wire);
        self
    }

    /// Enables fault injection with the given model.
    pub fn fault(mut self, fault: FaultModel) -> Self {
        self.config.fault = Some(fault);
        self
    }

    /// Samples a cohort of this many clients each round instead of running
    /// the full population.
    pub fn cohort(mut self, cohort: usize) -> Self {
        self.config.cohort = Some(cohort);
        self
    }

    /// Finalizes the configuration, returning a typed error if any field is
    /// out of range.
    pub fn try_build(self) -> Result<ExperimentConfig, ConfigError> {
        self.config.try_validate()?;
        Ok(self.config)
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid;
    /// [`ExperimentConfigBuilder::try_build`] is the non-panicking form.
    pub fn build(self) -> ExperimentConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(error) => panic!("invalid experiment config: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn builder_overrides_fields() {
        let cfg = ExperimentConfig::builder()
            .comm_time(100.0)
            .seed(9)
            .learning_rate(0.05)
            .batch_size(16)
            .eval_every(5)
            .sparsifier(SparsifierSpec::FubTopK)
            .build();
        assert_eq!(cfg.comm_time, 100.0);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.learning_rate, 0.05);
        assert_eq!(cfg.batch_size, 16);
        assert_eq!(cfg.eval_every, 5);
        assert_eq!(cfg.sparsifier, SparsifierSpec::FubTopK);
    }

    #[test]
    #[should_panic]
    fn invalid_learning_rate_panics() {
        let _ = ExperimentConfig::builder().learning_rate(0.0).build();
    }

    #[test]
    fn try_build_returns_typed_errors() {
        assert_eq!(
            ExperimentConfig::builder().learning_rate(-1.0).try_build(),
            Err(ConfigError::InvalidLearningRate)
        );
        assert_eq!(
            ExperimentConfig::builder().batch_size(0).try_build(),
            Err(ConfigError::ZeroBatchSize)
        );
        assert_eq!(
            ExperimentConfig::builder().comm_time(f64::NAN).try_build(),
            Err(ConfigError::InvalidCommTime)
        );
        assert_eq!(
            ExperimentConfig::builder().eval_every(0).try_build(),
            Err(ConfigError::ZeroEvalEvery)
        );
        assert!(ExperimentConfig::builder().try_build().is_ok());
    }

    #[test]
    fn wire_dependent_faults_need_a_wire_spec() {
        let fault = FaultModel {
            corrupt_prob: 0.1,
            ..FaultModel::default()
        };
        let err = ExperimentConfig::builder()
            .fault(fault.clone())
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Fault(FaultConfigError::RequiresWire("corrupt_prob"))
        );
        // The same model is fine once a wire spec prices the bytes.
        let ok = ExperimentConfig::builder()
            .fault(fault)
            .wire(WireSpec {
                codec: CodecSpec::Auto,
                channel: ChannelSpec::uniform(500.0, 500.0, 0.0),
            })
            .try_build();
        assert!(ok.is_ok());
    }

    #[test]
    fn out_of_range_fault_probability_is_a_typed_error() {
        let fault = FaultModel {
            drop_prob: 1.5,
            ..FaultModel::default()
        };
        assert!(matches!(
            ExperimentConfig::builder().fault(fault).try_build(),
            Err(ConfigError::Fault(
                FaultConfigError::ProbabilityOutOfRange {
                    field: "drop_prob",
                    ..
                }
            ))
        ));
    }

    #[test]
    fn dataset_specs_generate_consistent_dimensions() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for spec in [DatasetSpec::femnist_tiny(), DatasetSpec::cifar_bench()] {
            let fed = spec.generate(&mut rng);
            assert_eq!(fed.num_classes(), spec.num_classes());
            assert_eq!(fed.feature_dim(), spec.feature_dim());
        }
    }

    #[test]
    fn model_specs_build_expected_architectures() {
        let linear = ModelSpec::Linear.build(10, 4);
        assert_eq!(linear.num_params(), 44);
        let mlp = ModelSpec::Mlp { hidden: vec![8] }.build(10, 4);
        assert_eq!(mlp.num_params(), 10 * 8 + 8 + 8 * 4 + 4);
        let cnn = ModelSpec::Cnn {
            channels: 1,
            height: 6,
            width: 6,
            filters: 2,
        }
        .build(36, 3);
        assert!(cnn.num_params() > 0);
    }

    #[test]
    #[should_panic]
    fn cnn_spec_dimension_mismatch_panics() {
        let _ = ModelSpec::Cnn {
            channels: 1,
            height: 6,
            width: 6,
            filters: 2,
        }
        .build(35, 3);
    }

    #[test]
    fn sparsifier_specs_build_and_name() {
        for spec in SparsifierSpec::all() {
            let sparsifier = spec.build();
            assert_eq!(sparsifier.name(), spec.name());
        }
    }

    #[test]
    fn channel_spec_builds_deterministically() {
        let spec = ChannelSpec::uniform(1_000.0, 2_000.0, 0.1).with_spread(4.0);
        let a = spec.build(6, 9);
        let b = spec.build(6, 9);
        assert_eq!(a, b, "same spec + seed must build the same channel");
        let c = spec.build(6, 10);
        assert_ne!(a, c, "different seeds draw different heterogeneity");
        // Spread actually spreads: not all links equal.
        assert!(a
            .links()
            .iter()
            .any(|l| (l.uplink_bytes_per_unit - a.links()[0].uplink_bytes_per_unit).abs() > 1e-9));
    }

    #[test]
    fn fluctuating_channel_has_positive_multipliers() {
        let spec = ChannelSpec::uniform(1_000.0, 1_000.0, 0.0).with_fluctuation(12, 0.75);
        let channel = spec.build(4, 0);
        for round in 0..30 {
            for client in 0..4 {
                let m = channel.multiplier(round, client);
                assert!(m > 0.0 && m <= 1.0, "round {round} client {client}: {m}");
            }
        }
        // The trace actually moves.
        assert_ne!(channel.multiplier(0, 0), channel.multiplier(6, 0));
    }

    #[test]
    fn wire_builder_sets_spec() {
        let cfg = ExperimentConfig::builder()
            .wire(WireSpec {
                codec: CodecSpec::Auto,
                channel: ChannelSpec::uniform(500.0, 500.0, 0.0),
            })
            .build();
        let wire = cfg.wire.expect("wire set");
        assert_eq!(wire.codec, CodecSpec::Auto);
        let built = wire.build(3, 1);
        assert_eq!(built.channel.num_clients(), 3);
    }

    #[test]
    fn paper_scale_specs_match_paper_counts() {
        match DatasetSpec::femnist_paper() {
            DatasetSpec::Femnist(cfg) => {
                assert_eq!(cfg.num_clients, 156);
                assert_eq!(cfg.num_classes, 62);
            }
            _ => unreachable!(),
        }
        match DatasetSpec::cifar_paper() {
            DatasetSpec::Cifar(cfg) => assert_eq!(cfg.num_clients, 100),
            _ => unreachable!(),
        }
    }
}
