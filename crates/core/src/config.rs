//! Declarative experiment configuration.

use agsfl_exec::Parallelism;
use agsfl_ml::data::{
    FederatedDataset, SyntheticCifar, SyntheticCifarConfig, SyntheticFemnist,
    SyntheticFemnistConfig,
};
use agsfl_ml::model::{LinearSoftmax, Mlp, Model, SimpleCnn};
use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, Sparsifier, UnidirectionalTopK};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which federated dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// Synthetic FEMNIST-like dataset (writer-partitioned, 62 classes by
    /// default). See [`SyntheticFemnistConfig`].
    Femnist(SyntheticFemnistConfig),
    /// Synthetic CIFAR-10-like dataset with the one-class-per-client
    /// partition. See [`SyntheticCifarConfig`].
    Cifar(SyntheticCifarConfig),
}

impl DatasetSpec {
    /// The paper-scale FEMNIST setup (156 clients, 62 classes).
    pub fn femnist_paper() -> Self {
        Self::Femnist(SyntheticFemnistConfig::default())
    }

    /// A small FEMNIST setup for tests, examples and fast benchmarks.
    pub fn femnist_tiny() -> Self {
        Self::Femnist(SyntheticFemnistConfig::tiny())
    }

    /// A mid-sized FEMNIST setup used by the benchmark harness: enough
    /// clients and classes to show the paper's effects while keeping every
    /// figure regenerable in seconds. The noise and writer-shift levels are
    /// chosen so the task does not saturate within the benchmark time
    /// budgets (mirroring the paper's harder 62-class problem).
    pub fn femnist_bench() -> Self {
        Self::Femnist(SyntheticFemnistConfig {
            num_clients: 40,
            samples_per_client: 60,
            feature_dim: 48,
            num_classes: 30,
            classes_per_client: 6,
            writer_shift_std: 0.6,
            noise_std: 0.7,
            test_samples: 400,
        })
    }

    /// The paper-scale CIFAR-10 setup (100 clients, one class each).
    pub fn cifar_paper() -> Self {
        Self::Cifar(SyntheticCifarConfig::default())
    }

    /// A small CIFAR-10 setup for tests and fast benchmarks.
    pub fn cifar_bench() -> Self {
        Self::Cifar(SyntheticCifarConfig {
            num_clients: 30,
            num_classes: 10,
            train_samples: 1_800,
            test_samples: 300,
            feature_dim: 48,
            noise_std: 0.7,
        })
    }

    /// Number of classes of the generated dataset.
    pub fn num_classes(&self) -> usize {
        match self {
            Self::Femnist(cfg) => cfg.num_classes,
            Self::Cifar(cfg) => cfg.num_classes,
        }
    }

    /// Feature dimension of the generated dataset.
    pub fn feature_dim(&self) -> usize {
        match self {
            Self::Femnist(cfg) => cfg.feature_dim,
            Self::Cifar(cfg) => cfg.feature_dim,
        }
    }

    /// Generates the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedDataset {
        match self {
            Self::Femnist(cfg) => SyntheticFemnist::new(*cfg).generate(rng),
            Self::Cifar(cfg) => SyntheticCifar::new(*cfg).generate(rng),
        }
    }
}

/// Which model architecture to train.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multinomial logistic regression.
    Linear,
    /// Multi-layer perceptron with the given hidden widths.
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
    /// The small CNN; the feature dimension must equal
    /// `channels · height · width`.
    Cnn {
        /// Input channels.
        channels: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
        /// Number of 3x3 filters.
        filters: usize,
    },
}

impl ModelSpec {
    /// Instantiates the model for the given input dimension and class count.
    ///
    /// # Panics
    ///
    /// Panics if a [`ModelSpec::Cnn`] spec does not match `input_dim`.
    pub fn build(&self, input_dim: usize, num_classes: usize) -> Box<dyn Model> {
        match self {
            Self::Linear => Box::new(LinearSoftmax::new(input_dim, num_classes)),
            Self::Mlp { hidden } => Box::new(Mlp::new(input_dim, hidden, num_classes)),
            Self::Cnn {
                channels,
                height,
                width,
                filters,
            } => {
                assert_eq!(
                    channels * height * width,
                    input_dim,
                    "CNN spec {}x{}x{} does not match input dim {}",
                    channels,
                    height,
                    width,
                    input_dim
                );
                Box::new(SimpleCnn::new(
                    *channels,
                    *height,
                    *width,
                    *filters,
                    num_classes,
                ))
            }
        }
    }
}

/// Which gradient sparsification method the server/clients use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparsifierSpec {
    /// The paper's fairness-aware bidirectional top-k.
    FabTopK,
    /// Fairness-unaware bidirectional top-k.
    FubTopK,
    /// Unidirectional top-k (downlink up to `kN` elements).
    UnidirectionalTopK,
    /// Random `k` coordinates per round.
    PeriodicK,
    /// Dense exchange every round.
    SendAll,
}

impl SparsifierSpec {
    /// Instantiates the sparsifier.
    pub fn build(&self) -> Box<dyn Sparsifier> {
        match self {
            Self::FabTopK => Box::new(FabTopK::new()),
            Self::FubTopK => Box::new(FubTopK::new()),
            Self::UnidirectionalTopK => Box::new(UnidirectionalTopK::new()),
            Self::PeriodicK => Box::new(PeriodicK::new()),
            Self::SendAll => Box::new(SendAll::new()),
        }
    }

    /// All sparsifier variants compared in Fig. 4, in the paper's order.
    pub fn all() -> [SparsifierSpec; 5] {
        [
            Self::FabTopK,
            Self::FubTopK,
            Self::UnidirectionalTopK,
            Self::PeriodicK,
            Self::SendAll,
        ]
    }

    /// Human-readable name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FabTopK => "FAB-top-k",
            Self::FubTopK => "FUB-top-k",
            Self::UnidirectionalTopK => "Unidirectional top-k",
            Self::PeriodicK => "Periodic-k",
            Self::SendAll => "Always send all",
        }
    }
}

/// Full description of one experiment workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The federated dataset.
    pub dataset: DatasetSpec,
    /// The model architecture.
    pub model: ModelSpec,
    /// The sparsification method (FAB-top-k unless an experiment compares
    /// methods).
    pub sparsifier: SparsifierSpec,
    /// SGD step size `η`.
    pub learning_rate: f32,
    /// Mini-batch size per client.
    pub batch_size: usize,
    /// Normalized communication time `β` of a full-gradient exchange.
    pub comm_time: f64,
    /// Evaluate global loss / test accuracy every this many rounds.
    pub eval_every: usize,
    /// Master seed controlling dataset generation, initialization, mini-batch
    /// sampling and stochastic rounding.
    pub seed: u64,
    /// Worker-thread policy for the round engine. Purely a wall-clock knob:
    /// results are bit-identical for every setting (the simulator's
    /// determinism invariant), so sweeps may mix serial and parallel runs.
    pub parallelism: Parallelism,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            dataset: DatasetSpec::femnist_bench(),
            model: ModelSpec::Mlp { hidden: vec![32] },
            sparsifier: SparsifierSpec::FabTopK,
            learning_rate: 0.01,
            batch_size: 32,
            comm_time: 10.0,
            eval_every: 10,
            seed: 0,
            parallelism: Parallelism::Auto,
        }
    }
}

impl ExperimentConfig {
    /// Starts a builder pre-populated with the defaults.
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range.
    pub fn validate(&self) {
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.comm_time >= 0.0, "comm time must be non-negative");
        assert!(self.eval_every > 0, "eval_every must be positive");
    }
}

/// Non-consuming builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the dataset.
    pub fn dataset(mut self, dataset: DatasetSpec) -> Self {
        self.config.dataset = dataset;
        self
    }

    /// Sets the model.
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the sparsifier.
    pub fn sparsifier(mut self, sparsifier: SparsifierSpec) -> Self {
        self.config.sparsifier = sparsifier;
        self
    }

    /// Sets the learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.learning_rate = lr;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Sets the normalized communication time `β`.
    pub fn comm_time(mut self, comm_time: f64) -> Self {
        self.config.comm_time = comm_time;
        self
    }

    /// Sets the evaluation cadence.
    pub fn eval_every(mut self, eval_every: usize) -> Self {
        self.config.eval_every = eval_every;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread policy for the round engine.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build(self) -> ExperimentConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn builder_overrides_fields() {
        let cfg = ExperimentConfig::builder()
            .comm_time(100.0)
            .seed(9)
            .learning_rate(0.05)
            .batch_size(16)
            .eval_every(5)
            .sparsifier(SparsifierSpec::FubTopK)
            .build();
        assert_eq!(cfg.comm_time, 100.0);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.learning_rate, 0.05);
        assert_eq!(cfg.batch_size, 16);
        assert_eq!(cfg.eval_every, 5);
        assert_eq!(cfg.sparsifier, SparsifierSpec::FubTopK);
    }

    #[test]
    #[should_panic]
    fn invalid_learning_rate_panics() {
        let _ = ExperimentConfig::builder().learning_rate(0.0).build();
    }

    #[test]
    fn dataset_specs_generate_consistent_dimensions() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for spec in [DatasetSpec::femnist_tiny(), DatasetSpec::cifar_bench()] {
            let fed = spec.generate(&mut rng);
            assert_eq!(fed.num_classes(), spec.num_classes());
            assert_eq!(fed.feature_dim(), spec.feature_dim());
        }
    }

    #[test]
    fn model_specs_build_expected_architectures() {
        let linear = ModelSpec::Linear.build(10, 4);
        assert_eq!(linear.num_params(), 44);
        let mlp = ModelSpec::Mlp { hidden: vec![8] }.build(10, 4);
        assert_eq!(mlp.num_params(), 10 * 8 + 8 + 8 * 4 + 4);
        let cnn = ModelSpec::Cnn {
            channels: 1,
            height: 6,
            width: 6,
            filters: 2,
        }
        .build(36, 3);
        assert!(cnn.num_params() > 0);
    }

    #[test]
    #[should_panic]
    fn cnn_spec_dimension_mismatch_panics() {
        let _ = ModelSpec::Cnn {
            channels: 1,
            height: 6,
            width: 6,
            filters: 2,
        }
        .build(35, 3);
    }

    #[test]
    fn sparsifier_specs_build_and_name() {
        for spec in SparsifierSpec::all() {
            let sparsifier = spec.build();
            assert_eq!(sparsifier.name(), spec.name());
        }
    }

    #[test]
    fn paper_scale_specs_match_paper_counts() {
        match DatasetSpec::femnist_paper() {
            DatasetSpec::Femnist(cfg) => {
                assert_eq!(cfg.num_clients, 156);
                assert_eq!(cfg.num_classes, 62);
            }
            _ => unreachable!(),
        }
        match DatasetSpec::cifar_paper() {
            DatasetSpec::Cifar(cfg) => assert_eq!(cfg.num_clients, 100),
            _ => unreachable!(),
        }
    }
}
