//! The `metrics.jsonl` contract: a run with a deterministic
//! [`TelemetrySpec`] writes a **byte-identical** metrics file on every
//! identically-seeded run, telemetry never perturbs the trajectory, and the
//! opt-in wall-clock sets append their fields after the stable prefix.

use agsfl_core::telemetry::TelemetrySpec;
use agsfl_core::{
    report, ChannelSpec, ControllerSpec, CounterId, DatasetSpec, Experiment, ExperimentConfig,
    ModelSpec, Parallelism, SpanId, StopCondition, WireSpec,
};
use agsfl_wire::CodecSpec;

fn wired_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .dataset(DatasetSpec::femnist_tiny())
        .model(ModelSpec::Linear)
        .learning_rate(0.05)
        .batch_size(8)
        .comm_time(10.0)
        .eval_every(3)
        .seed(seed)
        .parallelism(Parallelism::Threads(2))
        .wire(WireSpec {
            codec: CodecSpec::Auto,
            channel: ChannelSpec::uniform(2_000.0, 4_000.0, 0.05),
        })
        .build()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("agsfl_metrics_{}_{tag}.jsonl", std::process::id()))
}

#[test]
fn deterministic_metrics_files_are_byte_identical_across_runs() {
    let cfg = wired_config(97);
    let stop = StopCondition::after_rounds(7);
    let run = |tag: &str| {
        let path = temp_path(tag);
        let mut exp = Experiment::new(&cfg);
        exp.set_telemetry(TelemetrySpec::deterministic(&path))
            .unwrap();
        let history = exp.run_adaptive(ControllerSpec::Algorithm3, &stop);
        exp.take_telemetry();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (history, body)
    };
    let (history_a, body_a) = run("det_a");
    let (history_b, body_b) = run("det_b");
    assert_eq!(body_a, body_b, "deterministic metrics files diverged");
    assert_eq!(history_a.points(), history_b.points());
    assert_eq!(body_a.lines().count(), 7, "one line per round");
    // The stable prefix carries the round's deterministic facts.
    let first = body_a.lines().next().unwrap();
    assert!(first.starts_with("{\"round\":1,\"k\":"), "{first}");
    assert!(first.contains("\"uplink_bytes\":"), "{first}");
    assert!(first.contains("\"downlink_codec\":"), "{first}");
    // No wall-clock set leaked into the deterministic file.
    assert!(!body_a.contains("\"spans_ns\""), "{first}");
    assert!(!body_a.contains("\"pool\""), "{first}");
    assert!(!body_a.contains("\"mem\""), "{first}");
}

#[test]
fn telemetry_is_observation_only_at_the_runner_level() {
    let cfg = wired_config(98);
    let stop = StopCondition::after_rounds(6);
    let plain = Experiment::new(&cfg).run_adaptive(ControllerSpec::Algorithm3, &stop);
    let path = temp_path("observed");
    let mut observed = Experiment::new(&cfg);
    observed.set_telemetry(TelemetrySpec::full(&path)).unwrap();
    let recorded = observed.run_adaptive(ControllerSpec::Algorithm3, &stop);
    assert_eq!(
        plain.points(),
        recorded.points(),
        "full telemetry perturbed the trajectory"
    );
    let state = observed.take_telemetry().unwrap();
    std::fs::remove_file(&path).ok();
    // The recorder saw every round and the wall-clock stages.
    let rec = state.recorder();
    assert_eq!(rec.counter_total(CounterId::Rounds), 6);
    assert_eq!(rec.span_histogram(SpanId::ClientPass).count(), 6);
    assert!(rec.span_histogram(SpanId::Evaluate).count() > 0);
    assert!(rec.counter_total(CounterId::UplinkBytes) > 0);
    // The summary table renders the observed stages.
    let table = report::telemetry_summary(rec, Some(state.dispatch_histogram()));
    assert!(table.contains("client_pass"), "{table}");
    assert!(table.contains("uplink_bytes"), "{table}");
}

#[test]
fn full_spec_appends_wallclock_sets_after_the_stable_prefix() {
    let cfg = wired_config(99);
    let path = temp_path("full");
    let mut exp = Experiment::new(&cfg);
    exp.set_telemetry(TelemetrySpec::full(&path)).unwrap();
    exp.run_adaptive(ControllerSpec::Algorithm3, &StopCondition::after_rounds(4));
    exp.take_telemetry();
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(body.lines().count(), 4);
    for line in body.lines() {
        assert!(line.contains("\"spans_ns\":{"), "{line}");
        assert!(line.contains("\"client_pass\":"), "{line}");
        assert!(line.contains("\"pool\":{"), "{line}");
        assert!(line.contains("\"busy_ns\":"), "{line}");
    }
    // Memory probes sample on the flush cadence: with the default cadence
    // of 32, only the first line carries them.
    let with_mem = body.lines().filter(|l| l.contains("\"mem\":{")).count();
    assert_eq!(with_mem, 1, "{body}");
    assert!(body.lines().next().unwrap().contains("\"rss_bytes\":"));
}

#[test]
fn checkpointed_recorded_run_resumes_bit_identically_and_times_the_write() {
    let cfg = wired_config(96);
    let total = 8;
    let plain = Experiment::new(&cfg).run_adaptive(
        ControllerSpec::Algorithm2,
        &StopCondition::after_rounds(total),
    );

    let ckpt = temp_path("ckpt_file");
    let metrics = temp_path("ckpt_metrics");
    let spec = agsfl_core::CheckpointSpec::new(&ckpt, 2);
    let mut first = Experiment::new(&cfg);
    first
        .set_telemetry(TelemetrySpec::deterministic(&metrics).with_timings())
        .unwrap();
    let mut c1 = ControllerSpec::Algorithm2.build(first.dim(), cfg.seed);
    first
        .run_with_controller_checkpointed(
            c1.as_mut(),
            &StopCondition::after_rounds(4),
            "AGS",
            &spec,
        )
        .unwrap();
    let state = first.take_telemetry().unwrap();
    assert_eq!(
        state
            .recorder()
            .span_histogram(SpanId::CheckpointWrite)
            .count(),
        2,
        "checkpoint writes on rounds 2 and 4 were timed"
    );

    // A fresh experiment resumes from the file; telemetry on the resumed
    // run starts a fresh recorder but the trajectory stays bit-identical.
    let mut second = Experiment::new(&cfg);
    second
        .set_telemetry(TelemetrySpec::deterministic(&metrics))
        .unwrap();
    let mut c2 = ControllerSpec::Algorithm2.build(second.dim(), cfg.seed);
    let resumed = second
        .resume_with_controller(c2.as_mut(), &StopCondition::after_rounds(total), &spec)
        .unwrap();
    assert_eq!(resumed.points(), plain.points());
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&metrics).ok();
}
