//! Facade crate re-exporting the AGSFL workspace.
pub use agsfl_core as core;
pub use agsfl_exec as exec;
pub use agsfl_fl as fl;
pub use agsfl_ml as ml;
pub use agsfl_online as online;
pub use agsfl_sparse as sparse;
pub use agsfl_telemetry as telemetry;
pub use agsfl_tensor as tensor;
pub use agsfl_wire as wire;
