//! Adaptive-k federated learning across different communication times on the
//! synthetic FEMNIST-like dataset (the scenario behind Figs. 5–7).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example femnist_adaptive
//! ```
//!
//! For each communication time the example adapts `k` with Algorithm 3 and
//! reports how the chosen sparsity, the loss and the accuracy respond: with
//! cheap communication the algorithm settles on a large `k`, with expensive
//! communication on a small one.

use agsfl::core::{
    ControllerSpec, DatasetSpec, Experiment, ExperimentConfig, ModelSpec, StopCondition,
};

fn main() {
    let comm_times = [0.1, 1.0, 10.0, 100.0];
    let rounds = 250usize;

    println!(
        "{:>12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "comm time", "rounds", "tail mean k", "final loss", "accuracy", "elapsed"
    );
    for &beta in &comm_times {
        let config = ExperimentConfig::builder()
            .dataset(DatasetSpec::femnist_bench())
            .model(ModelSpec::Mlp { hidden: vec![32] })
            .learning_rate(0.03)
            .batch_size(16)
            .comm_time(beta)
            .eval_every(25)
            .seed(11)
            .build();
        let mut experiment = Experiment::new(&config);
        let history = experiment.run_adaptive(
            ControllerSpec::Algorithm3,
            &StopCondition::after_rounds(rounds),
        );
        let ks = history.k_sequence();
        let tail = &ks[ks.len().saturating_sub(rounds / 4)..];
        let tail_mean = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
        println!(
            "{:>12.1} {:>8} {:>12.0} {:>12.4} {:>12.3} {:>12.1}",
            beta,
            history.len(),
            tail_mean,
            history.final_global_loss().unwrap_or(f64::NAN),
            history.final_test_accuracy().unwrap_or(f64::NAN),
            history
                .points()
                .last()
                .map(|p| p.elapsed_time)
                .unwrap_or(0.0),
        );
    }
    println!("\nExpected shape: tail mean k decreases as the communication time grows.");
}
