//! Strongly non-i.i.d. scenario: one class per client (the paper's CIFAR-10
//! setup, Fig. 8), showing why fairness-aware selection matters.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example cifar_one_class
//! ```
//!
//! Every client holds samples of exactly one class. The example compares
//! FAB-top-k with the fairness-unaware FUB-top-k at the same sparsity and
//! communication budget, and prints both the learning curves and the
//! per-client contribution statistics.

use agsfl::core::{
    DatasetSpec, Experiment, ExperimentConfig, ModelSpec, SparsifierSpec, StopCondition,
};

fn main() {
    let base = ExperimentConfig::builder()
        .dataset(DatasetSpec::cifar_bench())
        .model(ModelSpec::Mlp { hidden: vec![32] })
        .learning_rate(0.03)
        .batch_size(16)
        .comm_time(10.0)
        .eval_every(20)
        .seed(5)
        .build();
    let budget = StopCondition::after_time(600.0);

    for spec in [SparsifierSpec::FabTopK, SparsifierSpec::FubTopK] {
        let config = ExperimentConfig {
            sparsifier: spec,
            ..base.clone()
        };
        let mut experiment = Experiment::new(&config);
        let k = experiment.dim() / 50;
        let history = experiment.run_fixed_k(k, &budget);
        let cdf = history.contribution_cdf();
        println!("{}", spec.name());
        println!(
            "  final loss {:.4}, test accuracy {:.3}, rounds {}",
            history.final_global_loss().unwrap_or(f64::NAN),
            history.final_test_accuracy().unwrap_or(f64::NAN),
            history.len()
        );
        println!(
            "  per-client contributed elements: min {:.0}, median {:.0}, max {:.0}, clients with zero: {:.0}%",
            cdf.quantile(0.0).unwrap_or(0.0),
            cdf.quantile(0.5).unwrap_or(0.0),
            cdf.quantile(1.0).unwrap_or(0.0),
            cdf.eval(0.0) * 100.0
        );
        println!();
    }
    println!("Expected shape: FAB-top-k never starves a client (min contribution > 0),");
    println!("while FUB-top-k may leave some one-class clients with zero contributed elements.");
}
