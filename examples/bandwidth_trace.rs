//! Adaptive `k` under a fluctuating per-client bandwidth trace, with real
//! bytes on the wire.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example bandwidth_trace
//! ```
//!
//! The example builds a heterogeneous channel whose per-client bandwidths
//! oscillate round by round (a sinusoidal trace with per-client phase
//! offsets), frames every message through the `Auto` wire codec, and lets
//! the paper's Algorithm 3 adapt the sparsity degree `k` against the
//! **byte-priced** round time. Each round prints the bytes that actually
//! crossed the wire and which concrete encoding `Auto` picked; watch `k`
//! sink when the channel fades and recover when it clears — the behaviour
//! the scalar `2k` proxy cannot express.

use agsfl::core::{ChannelSpec, CodecSpec, ControllerSpec};
use agsfl::exec::Parallelism;
use agsfl::fl::{Simulation, SimulationConfig, TimeModel, WireConfig};
use agsfl::ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
use agsfl::ml::model::Mlp;
use agsfl::online::{stochastic_round, RoundFeedback};
use agsfl::sparse::FabTopK;
use agsfl::wire::CodecId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = 7u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dataset = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
    let model = Mlp::new(dataset.feature_dim(), &[16], dataset.num_classes());
    let num_clients = dataset.num_clients();

    // A heterogeneous channel (4x log-uniform bandwidth spread across
    // clients) that fades to a quarter of nominal capacity and back over a
    // 12-round period, with per-client phase offsets.
    let channel = ChannelSpec::uniform(20_000.0, 80_000.0, 0.05)
        .with_spread(4.0)
        .with_fluctuation(12, 0.75)
        .build(num_clients, seed);

    let mut sim = Simulation::new(
        Box::new(model),
        dataset,
        Box::new(FabTopK::new()),
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(10.0), // unused: wire pricing below
            seed,
            parallelism: Parallelism::Auto,
            wire: Some(WireConfig {
                codec: CodecSpec::Auto,
                channel,
            }),
            fault: None,
            cohort: None,
        },
    );

    let dim = sim.dim();
    let mut controller = ControllerSpec::Algorithm3.build(dim, seed);
    let mut rounding_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x517C_C1B7_2722_0A95);

    println!(
        "Adaptive k over a fluctuating byte-priced channel (D = {dim}, N = {num_clients}, codec = auto)\n"
    );
    println!(
        "{:>5}{:>7}{:>12}{:>12}{:>12}{:>14}{:>16}",
        "round", "k", "up [B]", "down [B]", "time", "codec (down)", "uplink codecs"
    );

    let mut total_up = 0u64;
    let mut total_down = 0u64;
    for _ in 0..36 {
        let k_cont = controller.propose_k().clamp(1.0, dim as f64);
        let k = stochastic_round(k_cont, &mut rounding_rng).min(dim);
        let probe_k = controller
            .probe_k()
            .map(|p| p.round().max(1.0) as usize)
            .unwrap_or(k);
        let report = sim.run_round(k, Some(probe_k));
        let wire = report.wire.as_ref().expect("byte-priced round");

        // Count which concrete encodings Auto picked for the uplinks.
        let mut counts = [0usize; 3];
        for &id in &wire.uplink_codecs {
            counts[id as usize] += 1;
        }
        let uplink_mix = CodecId::ALL
            .iter()
            .zip(counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(id, c)| format!("{}x{}", c, id.name()))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>5}{:>7}{:>12}{:>12}{:>12.2}{:>14}{:>16}",
            report.round,
            report.k_used,
            wire.uplink_bytes.iter().sum::<usize>(),
            wire.downlink_bytes,
            report.round_time,
            wire.downlink_codec.name(),
            uplink_mix
        );
        total_up += wire.uplink_bytes.iter().map(|&b| b as u64).sum::<u64>();
        total_down += wire.downlink_bytes as u64;

        controller.observe(&RoundFeedback {
            k_used: report.k_used,
            round_time: report.round_time,
            probe_loss_prev: report.probe.map(|p| p.loss_prev),
            probe_loss_now: report.probe.map(|p| p.loss_now),
            probe_loss_alt: report.probe.map(|p| p.loss_probe),
            probe_round_time: report.probe.map(|p| p.probe_round_time),
            probe_k: report.probe.map(|p| p.probe_k),
            loss_decrease: None,
        });
    }

    let eval = sim.evaluate();
    println!(
        "\nTotal bytes on wire: {total_up} up + {total_down} down = {} over {:.1} time units",
        total_up + total_down,
        sim.elapsed_time()
    );
    println!(
        "Final global train loss {:.4}, test accuracy {:.3}",
        eval.train_loss, eval.test_accuracy
    );
}
