//! A million-client population on a laptop: fixed-cohort rounds over a
//! lazily materialized client population, with the OS attesting to the
//! memory bound.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example million_clients             # full table
//! cargo run --release --example million_clients -- --smoke  # CI assertion
//! cargo run --release --example million_clients -- --metrics sweep.jsonl
//! ```
//!
//! `--metrics <path>` additionally writes one self-describing JSON line per
//! sweep point (throughput, residency, RSS, and the per-stage wall-time
//! breakdown from the round engine's recorder) to `<path>`.
//!
//! The full mode prints the `figures::scale_sweep` table — rounds/sec and
//! resident memory at N = 10³, 10⁴, 10⁵, 10⁶ with a fixed cohort of 256.
//! Only the sampled cohort's shards are ever materialized and only touched
//! clients keep persistent state, so the resident set stays flat across
//! four orders of magnitude of population size while the round throughput
//! barely moves: the server is O(cohort · k), not O(N).
//!
//! `--smoke` is the bounded-RSS gate `scripts/verify.sh` runs: a single
//! N = 10⁵ point that must finish with peak process RSS under a hard
//! budget, so a regression that re-materializes the population (or lets a
//! scratch grow with N) fails fast instead of quietly eating memory.

use agsfl::core::figures::scale_sweep::{self, ScaleSweepConfig};
use agsfl::telemetry::JsonlSink;

/// Peak-RSS budget for the smoke gate. The N = 10⁵ point needs a few tens
/// of MiB (cohort shards + touched-client residuals + the binary itself);
/// 256 MiB leaves headroom for allocator and platform noise while still
/// catching any O(N·D) re-materialization, which would need gigabytes.
const SMOKE_PEAK_RSS_LIMIT: u64 = 256 * 1024 * 1024;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).expect("--metrics needs a path").clone());
    if smoke {
        run_smoke();
    } else {
        run_table(metrics.as_deref());
    }
}

fn run_table(metrics: Option<&str>) {
    let config = ScaleSweepConfig::default();
    println!(
        "Sweeping populations {:?} with cohort {} ({} rounds each)...\n",
        config.populations, config.cohort, config.rounds
    );
    let result = scale_sweep::run(&config);
    print!("{}", result.render());
    if let Some(path) = metrics {
        let mut sink = JsonlSink::create(path, 1).expect("create metrics sink");
        for point in &result.points {
            sink.write_line(&point.json_object())
                .expect("write metrics line");
        }
        println!("\nWrote {} metrics lines to {path}", result.points.len());
    }
    println!(
        "\nResident state is bounded by participation (≤ rounds · cohort \
         clients), so the rss column stays flat as N grows 1000x."
    );
}

fn run_smoke() {
    let config = ScaleSweepConfig {
        populations: vec![100_000],
        ..ScaleSweepConfig::default()
    };
    let point = scale_sweep::run_point(&config, config.populations[0]);
    println!(
        "smoke: N={} cohort={} rounds={} rounds/s={:.1} resident={}",
        point.population, point.cohort, point.rounds, point.rounds_per_sec, point.resident_clients
    );
    let budget = point.rounds * point.cohort;
    assert!(
        point.resident_clients <= budget,
        "resident clients {} exceed the participation bound {budget}",
        point.resident_clients
    );
    match point.peak_rss_bytes {
        Some(peak) => {
            println!(
                "smoke: peak rss {:.1} MiB (budget {:.0} MiB)",
                peak as f64 / (1024.0 * 1024.0),
                SMOKE_PEAK_RSS_LIMIT as f64 / (1024.0 * 1024.0)
            );
            assert!(
                peak <= SMOKE_PEAK_RSS_LIMIT,
                "peak rss {peak} B blew the {SMOKE_PEAK_RSS_LIMIT} B budget: \
                 the population is being re-materialized somewhere"
            );
            println!("smoke: ok");
        }
        None => {
            // No procfs on this platform; the participation bound above
            // still ran, so don't fail the gate — just say so.
            println!("smoke: no rss probe on this platform, memory assertion skipped");
        }
    }
}
