//! Adaptive `k` training through injected client faults on a fluctuating
//! byte-priced channel.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example fault_injection
//! ```
//!
//! The example wires a chaotic [`FaultModel`] — Bernoulli dropout, crash
//! outages spanning several rounds, 4x straggler slowdowns, corrupted
//! uplink frames with bounded retries, and an uplink deadline — into the
//! simulator and lets Algorithm 3 adapt the sparsity degree `k` on top.
//! Each round prints who survived and what the faults cost; no round ever
//! aborts, because the server aggregates over survivors only and dropped
//! clients keep their updates in the error-feedback residual for later
//! rounds.

use agsfl::core::{ChannelSpec, CodecSpec, ControllerSpec};
use agsfl::exec::Parallelism;
use agsfl::fl::{
    FaultModel, MetricPoint, RunHistory, Simulation, SimulationConfig, TimeModel, WireConfig,
};
use agsfl::ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
use agsfl::ml::model::Mlp;
use agsfl::online::{stochastic_round, RoundFeedback};
use agsfl::sparse::FabTopK;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = 11u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dataset = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
    let model = Mlp::new(dataset.feature_dim(), &[16], dataset.num_classes());
    let num_clients = dataset.num_clients();

    // A fluctuating channel: bandwidth fades to a quarter of nominal and
    // back over a 10-round period, with per-client phase offsets.
    let channel = ChannelSpec::uniform(20_000.0, 80_000.0, 0.05)
        .with_spread(2.0)
        .with_fluctuation(10, 0.75)
        .build(num_clients, seed);

    // Every fault class at once. All draws come from a dedicated seeded
    // stream, so this run is bit-reproducible.
    let fault = FaultModel {
        drop_prob: 0.10,
        crash_prob: 0.05,
        outage_rounds: (1, 3),
        straggle_prob: 0.20,
        straggle_factor: 4.0,
        deadline: Some(60.0),
        corrupt_prob: 0.15,
        max_retries: 2,
        retry_backoff: 0.05,
        seed: seed ^ 0xFA,
    };

    let mut sim = Simulation::new(
        Box::new(model),
        dataset,
        Box::new(FabTopK::new()),
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(10.0), // unused: wire pricing below
            seed,
            parallelism: Parallelism::Auto,
            wire: Some(WireConfig {
                codec: CodecSpec::Auto,
                channel,
            }),
            fault: Some(fault),
            cohort: None,
        },
    );

    let dim = sim.dim();
    let mut controller = ControllerSpec::Algorithm3.build(dim, seed);
    let mut rounding_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x517C_C1B7_2722_0A95);
    let mut history = RunHistory::new("algorithm3+chaos", num_clients);

    println!(
        "Fault injection on a fluctuating channel (D = {dim}, N = {num_clients}, deadline = 60.0)\n"
    );
    println!(
        "{:>5}{:>7}{:>6}{:>9}{:>6}{:>9}{:>9}{:>9}{:>9}{:>12}",
        "round", "k", "surv", "offline", "drop", "straggle", "corrupt", "ddl", "retries", "rtx [B]"
    );

    for _ in 0..36 {
        let k_cont = controller.propose_k().clamp(1.0, dim as f64);
        let k = stochastic_round(k_cont, &mut rounding_rng).min(dim);
        let probe_k = controller
            .probe_k()
            .map(|p| p.round().max(1.0) as usize)
            .unwrap_or(k);
        let report = sim.run_round(k, Some(probe_k));
        let f = report.fault.as_ref().expect("fault model is configured");
        println!(
            "{:>5}{:>7}{:>6}{:>9}{:>6}{:>9}{:>9}{:>9}{:>9}{:>12}",
            report.round,
            report.k_used,
            f.survivors,
            f.offline,
            f.dropped,
            f.stragglers,
            f.corrupt_frames,
            f.deadline_dropped,
            f.retries,
            f.retransmitted_bytes
        );
        history.record_fault(f);
        history.push(MetricPoint {
            round: report.round,
            elapsed_time: sim.elapsed_time(),
            k: report.k_used,
            train_loss: report.train_loss,
            global_loss: None,
            test_accuracy: None,
        });

        controller.observe(&RoundFeedback {
            k_used: report.k_used,
            round_time: report.round_time,
            probe_loss_prev: report.probe.map(|p| p.loss_prev),
            probe_loss_now: report.probe.map(|p| p.loss_now),
            probe_loss_alt: report.probe.map(|p| p.loss_probe),
            probe_round_time: report.probe.map(|p| p.probe_round_time),
            probe_k: report.probe.map(|p| p.probe_k),
            loss_decrease: None,
        });
    }

    let totals = history.fault_totals();
    println!("\nRun totals over {} rounds:", history.len());
    println!(
        "  uploads lost {} (offline {}, dropped {}, corrupt {}, deadline {})",
        totals.lost(),
        totals.offline,
        totals.dropped,
        totals.corrupt_lost,
        totals.deadline_dropped
    );
    println!(
        "  stragglers {}, corrupted frames {}, retries {} adding {} retransmitted bytes",
        totals.stragglers, totals.corrupt_frames, totals.retries, totals.retransmitted_bytes
    );
    println!(
        "  smallest surviving cohort: {} of {num_clients} clients",
        totals
            .min_survivors
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string())
    );

    let eval = sim.evaluate();
    println!(
        "  final global train loss {:.4}, test accuracy {:.3} after {:.1} time units",
        eval.train_loss,
        eval.test_accuracy,
        sim.elapsed_time()
    );
}
