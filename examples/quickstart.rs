//! Quickstart: federated learning with FAB-top-k sparsification and online
//! adaptation of the sparsity degree `k`.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --metrics metrics.jsonl
//! ```
//!
//! The example trains a small model on a tiny synthetic FEMNIST-like
//! federated dataset, first with a fixed `k`, then with the paper's
//! Algorithm 3 adapting `k` online, and prints the loss/accuracy achieved
//! within the same normalized time budget.
//!
//! `--metrics <path>` streams one JSON line per adaptive round to `<path>`
//! (stage timings, pool counters and memory probes included) and prints the
//! cumulative telemetry summary at the end. Telemetry is observation only:
//! the trained trajectory is bit-identical with or without the flag.

use agsfl::core::telemetry::TelemetrySpec;
use agsfl::core::{
    report, ControllerSpec, DatasetSpec, Experiment, ExperimentConfig, ModelSpec, StopCondition,
};
use agsfl::exec::Parallelism;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).expect("--metrics needs a path").clone());
    // `Parallelism::Auto` sizes the round engine to the machine; results are
    // bit-identical for every setting (`Serial`, `Threads(n)`, `Auto`) — the
    // knob only changes wall-clock time.
    let parallelism = Parallelism::Auto;
    let config = ExperimentConfig::builder()
        .dataset(DatasetSpec::femnist_tiny())
        .model(ModelSpec::Mlp { hidden: vec![16] })
        .learning_rate(0.05)
        .batch_size(8)
        .comm_time(10.0)
        .eval_every(10)
        .seed(42)
        .parallelism(parallelism)
        .build();

    let time_budget = 400.0;
    println!("Model dimension D = {}", Experiment::new(&config).dim());
    println!(
        "Round engine: {parallelism:?} -> {} worker thread(s)",
        parallelism.resolve()
    );
    println!("Normalized time budget = {time_budget}\n");

    // 1. Fixed k = 5% of D.
    let mut fixed = Experiment::new(&config);
    let k = fixed.dim() / 20;
    let fixed_history = fixed.run_fixed_k(k, &StopCondition::after_time(time_budget));
    println!(
        "Fixed k = {k:>5}: {} rounds, final loss {:.4}, test accuracy {:.3}",
        fixed_history.len(),
        fixed_history.final_global_loss().unwrap_or(f64::NAN),
        fixed_history.final_test_accuracy().unwrap_or(f64::NAN),
    );

    // 2. Adaptive k with the paper's Algorithm 3 — telemetered when asked.
    let mut adaptive = Experiment::new(&config);
    if let Some(path) = &metrics {
        adaptive
            .set_telemetry(TelemetrySpec::full(path))
            .expect("open metrics sink");
    }
    let adaptive_history = adaptive.run_adaptive(
        ControllerSpec::Algorithm3,
        &StopCondition::after_time(time_budget),
    );
    let ks = adaptive_history.k_sequence();
    println!(
        "Adaptive k     : {} rounds, final loss {:.4}, test accuracy {:.3}",
        adaptive_history.len(),
        adaptive_history.final_global_loss().unwrap_or(f64::NAN),
        adaptive_history.final_test_accuracy().unwrap_or(f64::NAN),
    );
    println!(
        "Adaptive k trajectory: start {} -> end {} (min {}, max {})",
        ks.first().unwrap(),
        ks.last().unwrap(),
        ks.iter().min().unwrap(),
        ks.iter().max().unwrap()
    );

    if let Some(state) = adaptive.take_telemetry() {
        println!("\nTelemetry summary (adaptive run):");
        print!(
            "{}",
            report::telemetry_summary(state.recorder(), Some(state.dispatch_histogram()))
        );
        println!(
            "Per-round metrics written to {}",
            metrics.as_deref().unwrap_or("-")
        );
    }
}
