//! Fig. 4-style comparison of gradient sparsification methods.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example sparsifier_comparison
//! ```
//!
//! Compares FAB-top-k against FUB-top-k, unidirectional top-k, periodic-k,
//! always-send-all and FedAvg at a fixed sparsity degree and communication
//! time, and prints loss/accuracy versus normalized time plus the per-client
//! fairness summary.

use agsfl::core::figures::fig4::{self, Fig4Config};
use agsfl::core::{DatasetSpec, ExperimentConfig, ModelSpec};
use agsfl::exec::Parallelism;

fn main() {
    // All compared runs share the machine-sized round engine; parallelism is
    // purely a wall-clock knob (bit-identical results for every setting).
    let parallelism = Parallelism::Auto;
    println!(
        "Round engine: {parallelism:?} -> {} worker thread(s)\n",
        parallelism.resolve()
    );
    let config = Fig4Config {
        base: ExperimentConfig::builder()
            .dataset(DatasetSpec::femnist_bench())
            .model(ModelSpec::Mlp { hidden: vec![32] })
            .learning_rate(0.03)
            .batch_size(16)
            .comm_time(10.0)
            .eval_every(10)
            .seed(7)
            .parallelism(parallelism)
            .build(),
        k_fraction: 0.02,
        max_time: 800.0,
    };
    let result = fig4::run(&config);
    println!("{}", result.render(config.max_time));

    println!("Final losses:");
    for (label, loss) in result.final_losses() {
        println!("  {label:<24} {loss:.4}");
    }
}
