//! Smoke tests for the figure workloads at a reduced scale: every figure of
//! the paper can be regenerated end-to-end and exhibits the paper's
//! qualitative shape.

use agsfl::core::figures::{fig1, fig4, fig5, fig6, regret_check, sweep};
use agsfl::core::{ControllerSpec, DatasetSpec, ExperimentConfig, ModelSpec};

fn tiny_base(seed: u64, comm_time: f64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .dataset(DatasetSpec::femnist_tiny())
        .model(ModelSpec::Linear)
        .learning_rate(0.05)
        .batch_size(8)
        .comm_time(comm_time)
        .eval_every(10)
        .seed(seed)
        .build()
}

#[test]
fn fig1_assumption_holds_at_small_scale() {
    let config = fig1::Fig1Config {
        base: ExperimentConfig {
            eval_every: 1,
            ..tiny_base(21, 1.0)
        },
        initial_k_fractions: vec![1.0, 0.1],
        k_after_fraction: 0.1,
        psi_fraction_of_initial: 0.95,
        max_rounds_phase1: 100,
        rounds_phase2: 15,
    };
    let result = fig1::run(&config);
    assert_eq!(result.curves.len(), 2);
    let scale = result.curves[0].loss_at_switch;
    assert!(result.max_divergence() < scale * 0.25);
}

#[test]
fn fig4_fab_is_competitive_and_fairer() {
    let config = fig4::Fig4Config {
        base: tiny_base(22, 10.0),
        k_fraction: 0.05,
        max_time: 200.0,
    };
    let result = fig4::run(&config);
    assert_eq!(result.histories.len(), 6);
    let fab_loss = result
        .history("FAB-top-k")
        .unwrap()
        .final_global_loss()
        .unwrap();
    let periodic_loss = result
        .history("Periodic-k")
        .unwrap()
        .final_global_loss()
        .unwrap();
    // The paper's headline ordering: magnitude-based selection beats random
    // selection at equal communication budget. At this deliberately tiny test
    // scale both methods converge, so only a loose dominance check is made
    // here; the bench-scale run in EXPERIMENTS.md shows the full gap.
    assert!(
        fab_loss <= periodic_loss * 1.25,
        "FAB {fab_loss} vs periodic {periodic_loss}"
    );
    // Fairness: no client is starved by FAB.
    let fab_cdf = result.history("FAB-top-k").unwrap().contribution_cdf();
    assert_eq!(fab_cdf.eval(0.0), 0.0);
}

#[test]
fn fig5_all_adaptive_methods_run() {
    let config = fig5::Fig5Config {
        base: tiny_base(23, 10.0),
        max_time: 150.0,
        controllers: ControllerSpec::fig5_lineup().to_vec(),
    };
    let result = fig5::run(&config);
    assert_eq!(result.histories.len(), 4);
    for h in &result.histories {
        assert!(h.final_global_loss().unwrap().is_finite());
    }
}

#[test]
fn fig6_algorithm3_is_no_worse_than_algorithm2() {
    let config = fig6::Fig6Config {
        base: tiny_base(24, 100.0),
        max_time: 1_500.0,
    };
    let result = fig6::run(&config);
    let (loss3, loss2) = result.final_losses();
    assert!(
        loss3 <= loss2 * 1.15,
        "Algorithm 3 loss {loss3} should be competitive with Algorithm 2 loss {loss2}"
    );
    let (spread3, spread2) = result.k_spreads(20);
    assert!(spread3 <= spread2 + 1.0);
}

#[test]
fn fig7_sweep_adapts_k_to_comm_time() {
    let config = sweep::SweepConfig {
        base: tiny_base(25, 10.0),
        comm_times: vec![0.1, 100.0],
        adaptation_rounds: 80,
        replay_time_fraction: 0.5,
    };
    let result = sweep::run_femnist(&config);
    assert!(result.k_decreases_with_comm_time());
    assert_eq!(result.replays.len(), 4);
}

#[test]
fn fig8_sweep_runs_on_cifar_partition() {
    let config = sweep::SweepConfig {
        base: ExperimentConfig {
            dataset: DatasetSpec::Cifar(agsfl::ml::data::SyntheticCifarConfig::tiny()),
            ..tiny_base(26, 10.0)
        },
        comm_times: vec![1.0, 100.0],
        adaptation_rounds: 60,
        replay_time_fraction: 0.5,
    };
    let result = sweep::run_cifar(&config);
    assert_eq!(result.dataset, "CIFAR-10");
    assert_eq!(result.sequences.len(), 2);
    assert!(result.replays.iter().all(|r| r.final_loss.is_finite()));
}

#[test]
fn regret_bounds_hold_empirically() {
    let result = regret_check::run(&regret_check::RegretCheckConfig {
        rounds: 1_000,
        ..Default::default()
    });
    assert!(result.bounds_hold());
}
