//! End-to-end integration tests spanning the whole crate stack:
//! dataset generation → model → sparsification → FL simulation → adaptive k.

use agsfl::core::{
    ControllerSpec, DatasetSpec, Experiment, ExperimentConfig, ModelSpec, SparsifierSpec,
    StopCondition,
};

fn base_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .dataset(DatasetSpec::femnist_tiny())
        .model(ModelSpec::Mlp { hidden: vec![16] })
        .learning_rate(0.05)
        .batch_size(8)
        .comm_time(10.0)
        .eval_every(10)
        .seed(seed)
        .build()
}

#[test]
fn fab_topk_training_reduces_loss_and_improves_accuracy() {
    let mut experiment = Experiment::new(&base_config(1));
    let initial_loss = experiment.simulation().global_train_loss();
    let k = experiment.dim() / 20;
    let history = experiment.run_fixed_k(k, &StopCondition::after_rounds(200));
    let final_loss = history.final_global_loss().unwrap();
    assert!(
        final_loss < initial_loss * 0.8,
        "loss {initial_loss} -> {final_loss}"
    );
    assert!(history.final_test_accuracy().unwrap() > 0.3);
}

#[test]
fn adaptive_k_matches_or_beats_extreme_fixed_k_at_high_comm_cost() {
    // With very expensive communication, a huge fixed k wastes almost the
    // whole time budget on communication; the adaptive controller should do
    // at least as well because it drives k down.
    let config = ExperimentConfig {
        comm_time: 100.0,
        ..base_config(2)
    };
    let budget = StopCondition::after_time(2_000.0);

    let mut full_k = Experiment::new(&config);
    let dim = full_k.dim();
    let full_history = full_k.run_fixed_k(dim, &budget);

    let mut adaptive = Experiment::new(&config);
    let adaptive_history = adaptive.run_adaptive(ControllerSpec::Algorithm3, &budget);

    let full_loss = full_history.final_global_loss().unwrap();
    let adaptive_loss = adaptive_history.final_global_loss().unwrap();
    assert!(
        adaptive_loss <= full_loss * 1.05,
        "adaptive {adaptive_loss} should not lose badly to always-full {full_loss}"
    );
    // And the adaptive run must have executed many more rounds in the same time.
    assert!(adaptive_history.len() > full_history.len());
}

#[test]
fn all_sparsifiers_complete_a_run_and_stay_finite() {
    for spec in SparsifierSpec::all() {
        let config = ExperimentConfig {
            sparsifier: spec,
            ..base_config(3)
        };
        let mut experiment = Experiment::new(&config);
        let k = experiment.dim() / 10;
        let history = experiment.run_fixed_k(k, &StopCondition::after_rounds(30));
        assert_eq!(history.len(), 30, "{}", spec.name());
        let loss = history.final_global_loss().unwrap();
        assert!(
            loss.is_finite() && loss > 0.0,
            "{}: loss {loss}",
            spec.name()
        );
    }
}

#[test]
fn every_controller_completes_an_adaptive_run() {
    for spec in [
        ControllerSpec::Algorithm2,
        ControllerSpec::Algorithm3,
        ControllerSpec::ValueBased,
        ControllerSpec::Exp3 { num_arms: 8 },
        ControllerSpec::ContinuousBandit,
    ] {
        let mut experiment = Experiment::new(&base_config(4));
        let history = experiment.run_adaptive(spec, &StopCondition::after_rounds(25));
        assert_eq!(history.len(), 25, "{}", spec.name());
        let dim = experiment.dim();
        assert!(
            history.k_sequence().iter().all(|&k| k >= 1 && k <= dim),
            "{}: k out of range",
            spec.name()
        );
    }
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let run = || {
        let mut experiment = Experiment::new(&base_config(9));
        experiment
            .run_adaptive(ControllerSpec::Algorithm3, &StopCondition::after_rounds(20))
            .points()
            .to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_runs() {
    let run = |seed| {
        let mut experiment = Experiment::new(&base_config(seed));
        experiment
            .run_fixed_k(50, &StopCondition::after_rounds(10))
            .points()
            .to_vec()
    };
    assert_ne!(run(10), run(11));
}

#[test]
fn fedavg_baseline_is_comparable_but_distinct() {
    let config = base_config(6);
    let experiment = Experiment::new(&config);
    let k = experiment.dim() / 20;
    let fedavg = experiment.run_fedavg(k, &StopCondition::after_rounds(60));
    assert_eq!(fedavg.len(), 60);
    assert!(fedavg.final_global_loss().unwrap().is_finite());

    let mut gs = Experiment::new(&config);
    let gs_history = gs.run_fixed_k(k, &StopCondition::after_rounds(60));
    // Same number of rounds but different algorithms: the trajectories differ.
    assert_ne!(fedavg.final_global_loss(), gs_history.final_global_loss());
}
