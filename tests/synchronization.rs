//! Verifies the paper's synchronization invariant: because every client
//! applies the same downlink update, independently maintained per-client
//! weight copies remain bit-identical — so the simulator's single shared
//! weight vector is a faithful representation of Algorithm 1.

use agsfl::ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
use agsfl::ml::model::{LinearSoftmax, Model};
use agsfl::sparse::{ClientUpload, FabTopK, ResidualAccumulator, Sparsifier, UploadPlan};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A hand-rolled reimplementation of Algorithm 1 that keeps a *separate*
/// weight vector per client, used to check the invariant independently of
/// the `agsfl-fl` simulator.
#[test]
fn per_client_weight_copies_stay_identical_under_fab_topk() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
    let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
    let dim = model.num_params();
    let init = model.init_params(&mut rng);
    let n = fed.num_clients();
    let total: usize = fed.clients().iter().map(|c| c.len()).sum();

    // Independent weight copies and accumulators per client.
    let mut weights: Vec<Vec<f32>> = vec![init; n];
    let mut accumulators: Vec<ResidualAccumulator> =
        (0..n).map(|_| ResidualAccumulator::new(dim)).collect();
    let sparsifier = FabTopK::new();
    let k = dim / 10;
    let eta = 0.05f32;

    for round in 0..15 {
        // Every client computes a gradient on its own (full) shard at its own
        // weight copy and accumulates it.
        for (i, shard) in fed.clients().iter().enumerate() {
            let (_, grad) = model.loss_and_grad(&weights[i], &shard.features, &shard.labels);
            accumulators[i].add(&grad);
        }
        let mut plan_rng = ChaCha8Rng::seed_from_u64(round);
        let plan = sparsifier.upload_plan(dim, k, &mut plan_rng);
        assert_eq!(plan, UploadPlan::TopKOwn);
        let uploads: Vec<ClientUpload> = (0..n)
            .map(|i| {
                ClientUpload::new(
                    i,
                    fed.client(i).len() as f64 / total as f64,
                    accumulators[i].top_k_entries(k),
                )
            })
            .collect();
        let selection = sparsifier.select(&uploads, dim, k);
        // Every client applies the same downlink update to its own copy and
        // resets its own accumulator entries.
        for i in 0..n {
            selection.aggregated.apply_sgd(&mut weights[i], eta);
            accumulators[i].reset_indices(&selection.reset_indices[i]);
        }
        // Invariant: all weight copies identical after every round.
        for i in 1..n {
            assert_eq!(
                weights[0], weights[i],
                "client {i} diverged in round {round}"
            );
        }
    }
}

#[test]
fn fab_fairness_holds_throughout_training() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
    let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
    let dim = model.num_params();
    let mut weights = model.init_params(&mut rng);
    let n = fed.num_clients();
    let total: usize = fed.clients().iter().map(|c| c.len()).sum();
    let mut accumulators: Vec<ResidualAccumulator> =
        (0..n).map(|_| ResidualAccumulator::new(dim)).collect();
    let sparsifier = FabTopK::new();
    let k = 2 * n; // floor(k/N) = 2 elements guaranteed per client.

    for _ in 0..10 {
        for (i, shard) in fed.clients().iter().enumerate() {
            let (_, grad) = model.loss_and_grad(&weights, &shard.features, &shard.labels);
            accumulators[i].add(&grad);
        }
        let uploads: Vec<ClientUpload> = (0..n)
            .map(|i| {
                ClientUpload::new(
                    i,
                    fed.client(i).len() as f64 / total as f64,
                    accumulators[i].top_k_entries(k),
                )
            })
            .collect();
        let selection = sparsifier.select(&uploads, dim, k);
        assert!(selection.aggregated.nnz() <= k);
        for (i, contribution) in selection.contributions().iter().enumerate() {
            assert!(
                *contribution >= k / n,
                "client {i} contributed {contribution} < floor(k/N) = {}",
                k / n
            );
        }
        selection.aggregated.apply_sgd(&mut weights, 0.05);
        for (acc, resets) in accumulators.iter_mut().zip(selection.reset_indices.iter()) {
            acc.reset_indices(resets);
        }
    }
}
