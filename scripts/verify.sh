#!/usr/bin/env bash
# Tier-1 verification plus the doc and formatting gates, so doc rot and
# formatting drift fail fast. Run from anywhere inside the repository.
#
#   scripts/verify.sh          # build + tests + clippy + docs + fmt
#   scripts/verify.sh --quick  # skip the full workspace test pass and clippy
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q (tier-1: root integration tests)"
cargo test -q

step "resume equivalence (interrupted + resumed runs are bit-identical)"
cargo test -q -p agsfl-fl resume
cargo test -q -p agsfl-core resume

step "decode fuzz (hostile frames never panic the wire layer)"
cargo test -q -p agsfl-wire --test decode_fuzz

step "lossy tier (quantize/dequantize contracts + seed-reproducibility pins)"
cargo test -q -p agsfl-wire --test quantized_roundtrip
cargo test -q -p agsfl-fl --test lossy_reproducibility
cargo test -q -p agsfl-core qlinear8

step "pool gate (goldens + lossy pins bit-identical through the worker pool at every worker count)"
# golden_trajectory and lossy_reproducibility sweep Serial/2/4/8 workers
# internally, so one pass covers the serial reference and three pool
# configurations; pool_lifecycle pins reuse-without-respawn across rounds.
cargo test -q -p agsfl-fl --test golden_trajectory
cargo test -q -p agsfl-fl --test lossy_reproducibility
cargo test -q -p agsfl-fl --test pool_lifecycle

step "bounded-RSS smoke (N=10^5 cohort rounds under a 256 MiB peak-RSS assertion)"
cargo run --release --example million_clients -- --smoke

step "telemetry gate (recording is observation-only; metrics files byte-identical across runs)"
# telemetry_determinism pins recorded == unrecorded trajectories at
# Serial/2/4/8 workers and bounds the recorded round's overhead against
# the noop round; metrics_jsonl pins the JSONL sink output of two
# identical seeded runs byte-for-byte and the recorded checkpoint/resume
# path bit-identical.
cargo test -q -p agsfl-fl --test telemetry_determinism
cargo test -q -p agsfl-core --test metrics_jsonl

if [[ "$quick" -eq 0 ]]; then
    step "cargo test --workspace -q (full suite)"
    cargo test --workspace -q

    step "cargo clippy --workspace (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "cargo fmt --check"
cargo fmt --check

printf '\nverify: all gates passed\n'
