//! Offline shim for `serde`: the `Serialize`/`Deserialize` names exist both
//! as (empty) traits and as no-op derive macros, which is all the workspace
//! needs — types are annotated for downstream consumers but nothing in-tree
//! performs serde serialization. See `vendor/serde_derive` for details.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
