//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro over functions
//! with `arg in strategy` parameters, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range and tuple strategies, and
//! `proptest::collection::vec`.
//!
//! Compared to upstream there is no shrinking and no persisted failure seeds:
//! each test runs a fixed, deterministic number of random cases (seeded from
//! the test body's location so distinct tests see distinct streams). That
//! keeps the property tests meaningful — they still explore hundreds of
//! random inputs — while building with zero external dependencies.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration; only `cases` is supported.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// A value generator. Unlike upstream there is no value tree / shrinking:
/// a strategy simply produces a value from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, i8, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: a fixed length or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi_inclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Builds the deterministic per-test RNG from a source-location string.
#[doc(hidden)]
pub fn rng_for(loc: &str) -> TestRng {
    TestRng::seed_from_u64(seed_from_location(loc))
}

/// Derives a deterministic seed from a source-location string.
#[doc(hidden)]
pub fn seed_from_location(loc: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in loc.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Property-test assertion; aborts the current case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies, running each body for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])+
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(file!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 128);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_lengths(v in collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_and_fixed_len(pair in (0usize..4, -2.0f32..2.0), v in collection::vec(-1i8..=1, 6)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(v.len(), 6);
            prop_assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        }
    }
}
