//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the surface the workspace uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64` default), [`seq::SliceRandom`]
//! (`shuffle`, `partial_shuffle`, `choose`) and [`rngs::StdRng`].
//!
//! The algorithms are self-contained and deterministic; they do not promise
//! bit-compatibility with upstream `rand`, only a stable stream for a given
//! seed, which is what the reproducibility tests in this workspace rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random bits. Object safe.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// `[0, 1)` for floats, uniform over all values for integers and `bool`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Compare against the most significant bit, like upstream's
        // `Standard` distribution for `bool`.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Draws a `u64` uniformly from `[0, range)` using the widening-multiply
/// rejection method of upstream `UniformInt::sample_single` (Lemire).
pub(crate) fn uniform_u64_lemire<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// 32-bit variant of [`uniform_u64_lemire`], consuming one `next_u32` per
/// attempt exactly like upstream's `UniformInt<u32>::sample_single`.
pub(crate) fn uniform_u32_lemire<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (range as u64);
        let lo = m as u32;
        if lo <= zone {
            return (m >> 32) as u32;
        }
    }
}

/// Uniform index in `[0, ubound)`, matching upstream `seq::index::gen_index`:
/// bounds that fit in `u32` take the 32-bit sampling path.
pub(crate) fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        uniform_u32_lemire(rng, ubound as u32) as usize
    } else {
        uniform_u64_lemire(rng, ubound as u64) as usize
    }
}

/// Ranges a uniform value can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// 64-bit integer types sample through the 64-bit Lemire path (like
/// upstream's `uniform_int_impl!` with `$u_large = u64`), 32-bit-and-smaller
/// types through the 32-bit path.
macro_rules! int_sample_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_lemire(rng, range) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let range = (hi as i128 - lo as i128) as u128 + 1;
                if range > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_lemire(rng, range as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range_64!(usize, u64, i64);

macro_rules! int_sample_range_32 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end as i64 - self.start as i64) as u32;
                (self.start as i64 + uniform_u32_lemire(rng, range) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let range = (hi as i64 - lo as i64) as u64 + 1;
                if range > u32::MAX as u64 {
                    return rng.next_u32() as $t;
                }
                (lo as i64 + uniform_u32_lemire(rng, range as u32) as i64) as $t
            }
        }
    )*};
}

int_sample_range_32!(u32, i32, i8);

/// `[0, 1)` with mantissa-many bits, as upstream's `UniformFloat` samples it
/// (`value1_2 - 1.0` where `value1_2` has a zero exponent).
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    f32::from_bits((rng.next_u32() >> 9) | 0x3F80_0000) - 1.0
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::from_bits((rng.next_u64() >> 12) | 0x3FF0_0000_0000_0000) - 1.0
}

macro_rules! float_sample_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                loop {
                    let res = $unit(rng) * scale + self.start;
                    // Rounding can land exactly on the excluded upper bound;
                    // upstream also rejects that case.
                    if res < self.end {
                        return res;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let scale = hi - lo;
                $unit(rng) * scale + lo
            }
        }
    )*};
}

float_sample_range!(f32, unit_f32; f64, unit_f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform `[0, 1)` for
    /// floats, uniform over all values for integers, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with the same PCG32 stream
    /// upstream `rand_core` 0.6 uses, so `seed_from_u64(n)` produces the same
    /// seed bytes as the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Bundled RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256++ (small, fast, good quality).
    ///
    /// Like upstream, the algorithm behind `StdRng` is unspecified and only
    /// promises determinism for a fixed seed within one version.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers (`shuffle` and friends).
pub mod seq {
    use super::{gen_index, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles `amount` randomly chosen elements into the *tail* of the
        /// slice and returns `(shuffled_tail, rest)`, like upstream `rand`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let end = len.saturating_sub(amount);
            for i in (end..len).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
            let (rest, tail) = self.split_at_mut(end);
            (tail, rest)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i8 = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn gen_float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_returns_amount_in_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..10).collect();
        let (tail, rest) = v.partial_shuffle(&mut rng, 3);
        assert_eq!(tail.len(), 3);
        assert_eq!(rest.len(), 7);
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(8);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&v));
        let mut pool: Vec<usize> = (0..5).collect();
        pool.shuffle(dynrng);
    }
}
