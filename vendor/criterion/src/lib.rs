//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace's `benches/` use: `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing model: each benchmark is warmed up, then measured over
//! `sample_size` samples of adaptively chosen iteration counts; the harness
//! reports the per-iteration mean of the fastest half of samples (a robust
//! estimator against scheduler noise). Results are printed in criterion's
//! familiar `name    time: [..]` shape so tee'd logs stay greppable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`]; the shim treats all
/// variants identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            config: *self,
            estimate_ns: None,
        };
        f(&mut bencher);
        report(&name, &bencher);
        self
    }

    /// Starts a named group of benchmarks sharing this configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            prefix: name,
        }
    }
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Overrides the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        *self.criterion = self.criterion.sample_size(n);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    config: Criterion,
    estimate_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine` called in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut iters_done: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        let samples = self.config.sample_size;
        let target = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = (target / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        self.estimate_ns = Some(robust_mean_ns(&mut times));
    }

    /// Measures `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One warm-up invocation to estimate cost (also primes caches).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed().as_secs_f64();

        let samples = self.config.sample_size;
        let target = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = (target / per_iter.max(1e-9)).ceil().clamp(1.0, 1000.0) as u64;

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        self.estimate_ns = Some(robust_mean_ns(&mut times));
    }
}

/// Mean of the fastest half of the samples, in nanoseconds.
fn robust_mean_ns(times: &mut [f64]) -> f64 {
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let half = times.len().div_ceil(2);
    let mean = times[..half].iter().sum::<f64>() / half as f64;
    mean * 1e9
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.estimate_ns {
        Some(ns) => println!("{name:<50} time: [{}]", format_ns(ns)),
        None => println!("{name:<50} time: [no measurement]"),
    }
}

/// Formats nanoseconds with criterion-style units.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn iter_produces_an_estimate() {
        let mut c = fast_config();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = fast_config();
        c.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = fast_config();
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(0)));
        g.finish();
    }

    #[test]
    fn format_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains('s'));
    }
}
