//! No-op derive macros for the vendored `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and config
//! types for downstream consumers, but nothing in-tree serializes through
//! serde (no `serde_json`, no trait bounds). With crates.io unavailable, the
//! derives expand to nothing: the attribute remains valid and the code keeps
//! compiling, and a future PR can swap the real serde back in by editing one
//! line of the workspace manifest.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
