//! Offline implementation of the ChaCha8 random number generator, exposing
//! the `rand_chacha::ChaCha8Rng` name the workspace uses.
//!
//! This is a real ChaCha8 keystream generator (8 double-rounds, 32-byte key,
//! 64-bit block counter), so the stream quality matches the upstream crate;
//! only the exact byte stream for a given seed may differ, which none of the
//! workspace's reproducibility guarantees depend on — they require identical
//! streams for identical seeds *within* this codebase.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); words 14..16 hold a nonce
    /// of zero.
    counter: u64,
    /// Buffered keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        // 8 rounds = 4 column/diagonal double-rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input.iter()) {
            *s = s.wrapping_add(*i);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(b);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let sa: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<u32> = first.iter().copied().collect();
        // 40 words spanning 3 blocks should essentially all be distinct.
        assert!(distinct.len() > 35);
    }
}
